#include "flash/fil.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hams {

Fil::Fil(const FlashGeometry& geom, const NandTiming& timing)
    : _timing(timing), pool(geom)
{
    channelFree.assign(geom.channels, 0);
    channelBgFree.assign(geom.channels, 0);
}

Tick
Fil::claimChannel(std::uint32_t ch, Tick earliest, Tick duration,
                  bool background)
{
    Tick& fg = channelFree[ch];
    Tick& bg = channelBgFree[ch];
    if (background) {
        Tick start = std::max({earliest, fg, bg});
        bg = std::max(bg, start + duration);
        return start;
    }
    Tick start = std::max(earliest, fg);
    // Foreground traffic owns the bus: a background transfer still
    // pending at our start slips behind us by our occupancy, and any
    // tracked background op still in flight on this channel finishes
    // later by the same window.
    if (bg > start) {
        bg += duration;
        pool.bumpChannelOps(ch, start, duration);
    }
    fg = std::max(fg, start + duration);
    return start;
}

FlashOpHandle
Fil::submitTracked(const FlashOp& op, Tick at)
{
    if (!op.background)
        panic("submitTracked is for background ops: a foreground op is "
              "never suspended, so its latched submit() tick is final");
    FlashAddress a = FlashAddress::decompose(op.ppn, pool.geometry());
    // Only a read's completion is a channel transfer (register drain);
    // program/erase completions are cell work, whose extensions come
    // from the die-suspension push alone.
    return pool.trackOp(a, submit(op, at),
                        /*transfer_tailed=*/op.type ==
                            FlashOp::Type::Read);
}

Tick
Fil::submit(const FlashOp& op, Tick at)
{
    FlashAddress a = FlashAddress::decompose(op.ppn, pool.geometry());
    if (op.bytes > pool.geometry().pageSize)
        panic("flash op bytes ", op.bytes, " exceed page size ",
              pool.geometry().pageSize);

    switch (op.type) {
      case FlashOp::Type::Read:
        return read(a, op.bytes, at, op.background);
      case FlashOp::Type::Program:
        return program(a, op.bytes, at, op.background);
      case FlashOp::Type::Erase:
        return erase(a, at, op.background);
    }
    panic("unreachable flash op type");
}

Tick
Fil::admitForeground(const FlashAddress& a, Tick at, bool background,
                     bool& suspended, Tick& suspend_from)
{
    suspended = false;
    suspend_from = 0;
    if (background)
        return at;
    Tick all_gate = std::max(pool.dieFreeAt(a), pool.planeFreeAt(a));
    if (all_gate <= at)
        return at; // resource idle: nothing to preempt
    Tick fg_gate = std::max(pool.dieFgFreeAt(a), pool.planeFgFreeAt(a));
    if (all_gate <= fg_gate)
        return at; // foreground work is the blocker: queue normally
    // Only background cell work extends past the foreground timeline:
    // suspend it and take the die/plane after the handshake.
    suspended = true;
    suspend_from = std::max(at, fg_gate);
    ++_activity.suspensions;
    return suspend_from + _timing.tSuspend;
}

Tick
Fil::read(const FlashAddress& a, std::uint32_t bytes, Tick at,
          bool background)
{
    bool suspended;
    Tick suspend_from;
    at = admitForeground(a, at, background, suspended, suspend_from);

    // Command/address cycles ride the CA bus (no data-bus occupancy);
    // the cell read runs on the plane; the data transfer then drains
    // the die register over the channel data bus. Under a suspension
    // the die/plane belong to this op from `at`.
    Tick cmd_start = std::max(at, suspended ? at : pool.dieFreeAt(a));
    Tick cmd_done = cmd_start + _timing.cmdOverhead;

    Tick cell_start =
        std::max(cmd_done, suspended ? cmd_done : pool.planeFreeAt(a));
    Tick cell_done = cell_start + _timing.tR;

    Tick xfer_start = claimChannel(a.channel, cell_done,
                                   _timing.transferTime(bytes), background);
    Tick xfer_done = xfer_start + _timing.transferTime(bytes);

    if (background) {
        pool.occupyPlaneBg(a, cell_done);
        pool.occupyDieBg(a, xfer_done);
        ++_activity.gcReads;
    } else {
        pool.occupyPlane(a, cell_done);
        pool.occupyDie(a, xfer_done);
        finishSuspend(a, suspended, suspend_from, xfer_done);
    }

    ++_activity.reads;
    _activity.bytesTransferred += bytes;
    return xfer_done;
}

Tick
Fil::program(const FlashAddress& a, std::uint32_t bytes, Tick at,
             bool background)
{
    bool suspended;
    Tick suspend_from;
    at = admitForeground(a, at, background, suspended, suspend_from);

    // Data loads into the die register over the channel first, then the
    // cell program proceeds without holding the bus.
    Tick earliest = std::max(at, suspended ? at : pool.dieFreeAt(a));
    Tick duration = _timing.cmdOverhead + _timing.transferTime(bytes);
    Tick xfer_start = claimChannel(a.channel, earliest, duration,
                                   background);
    Tick xfer_done = xfer_start + duration;

    Tick cell_start =
        std::max(xfer_done, suspended ? xfer_done : pool.planeFreeAt(a));
    Tick cell_done = cell_start + _timing.tPROG;

    if (background) {
        pool.occupyPlaneBg(a, cell_done);
        pool.occupyDieBg(a, cell_done);
        ++_activity.gcPrograms;
    } else {
        pool.occupyPlane(a, cell_done);
        pool.occupyDie(a, cell_done);
        finishSuspend(a, suspended, suspend_from, cell_done);
    }

    ++_activity.programs;
    _activity.bytesTransferred += bytes;
    return cell_done;
}

Tick
Fil::erase(const FlashAddress& a, Tick at, bool background)
{
    bool suspended;
    Tick suspend_from;
    at = admitForeground(a, at, background, suspended, suspend_from);

    Tick cmd_start = std::max(at, suspended ? at : pool.dieFreeAt(a));
    Tick cmd_done = cmd_start + _timing.cmdOverhead;

    Tick cell_start =
        std::max(cmd_done, suspended ? cmd_done : pool.planeFreeAt(a));
    Tick cell_done = cell_start + _timing.tERASE;

    if (background) {
        pool.occupyPlaneBg(a, cell_done);
        pool.occupyDieBg(a, cell_done);
        ++_activity.gcErases;
    } else {
        pool.occupyPlane(a, cell_done);
        pool.occupyDie(a, cell_done);
        finishSuspend(a, suspended, suspend_from, cell_done);
    }

    ++_activity.erases;
    return cell_done;
}

void
Fil::reset()
{
    pool.reset();
    std::fill(channelFree.begin(), channelFree.end(), 0);
    std::fill(channelBgFree.begin(), channelBgFree.end(), 0);
}

} // namespace hams

#include "flash/fil.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hams {

Fil::Fil(const FlashGeometry& geom, const NandTiming& timing)
    : _timing(timing), pool(geom)
{
    channelFree.assign(geom.channels, 0);
}

Tick
Fil::submit(const FlashOp& op, Tick at)
{
    FlashAddress a = FlashAddress::decompose(op.ppn, pool.geometry());
    if (op.bytes > pool.geometry().pageSize)
        panic("flash op bytes ", op.bytes, " exceed page size ",
              pool.geometry().pageSize);

    switch (op.type) {
      case FlashOp::Type::Read:
        return read(a, op.bytes, at);
      case FlashOp::Type::Program:
        return program(a, op.bytes, at);
      case FlashOp::Type::Erase:
        return erase(a, at);
    }
    panic("unreachable flash op type");
}

Tick
Fil::read(const FlashAddress& a, std::uint32_t bytes, Tick at)
{
    // Command/address cycles ride the CA bus (no data-bus occupancy);
    // the cell read runs on the plane; the data transfer then drains
    // the die register over the channel data bus.
    Tick cmd_start = std::max(at, pool.dieFreeAt(a));
    Tick cmd_done = cmd_start + _timing.cmdOverhead;

    Tick cell_start = std::max(cmd_done, pool.planeFreeAt(a));
    Tick cell_done = cell_start + _timing.tR;
    pool.occupyPlane(a, cell_done);

    Tick& chan = channelFree[a.channel];
    Tick xfer_start = std::max(cell_done, chan);
    Tick xfer_done = xfer_start + _timing.transferTime(bytes);
    chan = std::max(chan, xfer_done);
    pool.occupyDie(a, xfer_done);

    ++_activity.reads;
    _activity.bytesTransferred += bytes;
    return xfer_done;
}

Tick
Fil::program(const FlashAddress& a, std::uint32_t bytes, Tick at)
{
    // Data loads into the die register over the channel first, then the
    // cell program proceeds without holding the bus.
    Tick& chan = channelFree[a.channel];
    Tick xfer_start = std::max({at, chan, pool.dieFreeAt(a)});
    Tick xfer_done =
        xfer_start + _timing.cmdOverhead + _timing.transferTime(bytes);
    chan = std::max(chan, xfer_done);

    Tick cell_start = std::max(xfer_done, pool.planeFreeAt(a));
    Tick cell_done = cell_start + _timing.tPROG;
    pool.occupyPlane(a, cell_done);
    pool.occupyDie(a, cell_done);

    ++_activity.programs;
    _activity.bytesTransferred += bytes;
    return cell_done;
}

Tick
Fil::erase(const FlashAddress& a, Tick at)
{
    Tick cmd_start = std::max(at, pool.dieFreeAt(a));
    Tick cmd_done = cmd_start + _timing.cmdOverhead;

    Tick cell_start = std::max(cmd_done, pool.planeFreeAt(a));
    Tick cell_done = cell_start + _timing.tERASE;
    pool.occupyPlane(a, cell_done);
    pool.occupyDie(a, cell_done);

    ++_activity.erases;
    return cell_done;
}

void
Fil::reset()
{
    pool.reset();
    std::fill(channelFree.begin(), channelFree.end(), 0);
}

} // namespace hams

/**
 * @file
 * NAND flash timing presets and geometry.
 *
 * Z-NAND (Samsung Z-SSD media) is a 48-layer V-NAND operated as SLC with
 * an optimised I/O circuit: 3 us page reads and 100 us programs — 15x and
 * 7x faster than conventional V-NAND (paper SSII-C). The presets below
 * also cover the TLC-class media used by the comparison NVMe/SATA SSDs.
 */

#ifndef HAMS_FLASH_NAND_TIMING_HH_
#define HAMS_FLASH_NAND_TIMING_HH_

#include <cstdint>

#include "sim/types.hh"

namespace hams {

/** Per-die NAND operation latencies and channel interface speed. */
struct NandTiming
{
    Tick tR = microseconds(3);        //!< page read (cell -> register)
    Tick tPROG = microseconds(100);   //!< page program
    Tick tERASE = milliseconds(3);    //!< block erase
    Tick cmdOverhead = nanoseconds(200); //!< command/address cycles
    /**
     * Program/erase suspend handshake: the time to pause an ongoing
     * background cell operation so a foreground op can use the
     * die/plane (suspend-priority scheduling in the FIL).
     */
    Tick tSuspend = microseconds(5);
    double channelBandwidth = 1.2e9;  //!< bytes/s on the flash channel

    /** Samsung Z-NAND: SLC-mode 3D flash with short latencies. */
    static NandTiming zNand();

    /** Conventional V-NAND (MLC/TLC class): 15x read / 7x write slower. */
    static NandTiming vNand();

    /** Time to move @p bytes over the channel bus. */
    Tick
    transferTime(std::uint64_t bytes) const
    {
        return cmdOverhead +
               static_cast<Tick>(static_cast<double>(bytes) /
                                 channelBandwidth * 1e12);
    }
};

/** Physical organisation of the flash complex. */
struct FlashGeometry
{
    std::uint32_t channels = 16;
    std::uint32_t packagesPerChannel = 1;
    std::uint32_t diesPerPackage = 2;
    std::uint32_t planesPerDie = 2;
    std::uint32_t blocksPerPlane = 1024;
    std::uint32_t pagesPerBlock = 256;
    std::uint32_t pageSize = 4096;

    /** Independent parallel units (channel x package x die x plane). */
    std::uint64_t
    parallelUnits() const
    {
        return std::uint64_t(channels) * packagesPerChannel *
               diesPerPackage * planesPerDie;
    }

    std::uint64_t pagesPerPlane() const
    {
        return std::uint64_t(blocksPerPlane) * pagesPerBlock;
    }

    std::uint64_t totalPages() const
    {
        return parallelUnits() * pagesPerPlane();
    }

    std::uint64_t rawCapacity() const { return totalPages() * pageSize; }
};

/**
 * Decoded physical flash address. Physical page numbers (PPNs) order
 * pages as [parallel-unit | block | page] so the FTL's round-robin
 * allocation stripes consecutive writes across every channel and die.
 */
struct FlashAddress
{
    std::uint32_t channel = 0;
    std::uint32_t package = 0;
    std::uint32_t die = 0;
    std::uint32_t plane = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    static FlashAddress decompose(std::uint64_t ppn, const FlashGeometry& g);
    std::uint64_t flatten(const FlashGeometry& g) const;

    /** Index of the parallel unit this address lives on. */
    std::uint64_t parallelUnit(const FlashGeometry& g) const;
};

} // namespace hams

#endif // HAMS_FLASH_NAND_TIMING_HH_

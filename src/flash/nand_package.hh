/**
 * @file
 * Per-die / per-plane busy-state tracking for a flash complex.
 *
 * Dies own a command/data register: a die is unavailable while a cell
 * operation (tR/tPROG/tERASE) runs or while its register is being
 * drained over the channel. Planes within a die operate independently
 * for cell work but share the die's register and channel port.
 */

#ifndef HAMS_FLASH_NAND_PACKAGE_HH_
#define HAMS_FLASH_NAND_PACKAGE_HH_

#include <cstdint>
#include <vector>

#include "flash/nand_timing.hh"
#include "sim/types.hh"

namespace hams {

/** Operation counters consumed by the flash energy model. */
struct FlashActivity
{
    std::uint64_t reads = 0;
    std::uint64_t programs = 0;
    std::uint64_t erases = 0;
    std::uint64_t bytesTransferred = 0;
};

/**
 * Busy-until bookkeeping for every die and plane in the complex.
 * Indexed by FlashAddress fields.
 */
class NandPackagePool
{
  public:
    explicit NandPackagePool(const FlashGeometry& geom);

    /** Earliest tick the die containing @p a can accept a command. */
    Tick dieFreeAt(const FlashAddress& a) const;

    /** Earliest tick plane @p a can start a cell operation. */
    Tick planeFreeAt(const FlashAddress& a) const;

    /** Reserve the die until @p until. */
    void occupyDie(const FlashAddress& a, Tick until);

    /** Reserve the plane until @p until. */
    void occupyPlane(const FlashAddress& a, Tick until);

    /** Clear all busy state (power cycle). */
    void reset();

    const FlashGeometry& geometry() const { return geom; }

  private:
    std::size_t dieIndex(const FlashAddress& a) const;
    std::size_t planeIndex(const FlashAddress& a) const;

    FlashGeometry geom;
    std::vector<Tick> dieFree;
    std::vector<Tick> planeFree;
};

} // namespace hams

#endif // HAMS_FLASH_NAND_PACKAGE_HH_

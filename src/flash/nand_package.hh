/**
 * @file
 * Per-die / per-plane busy-state tracking for a flash complex.
 *
 * Dies own a command/data register: a die is unavailable while a cell
 * operation (tR/tPROG/tERASE) runs or while its register is being
 * drained over the channel. Planes within a die operate independently
 * for cell work but share the die's register and channel port.
 *
 * Occupancy is tracked on two timelines per resource: foreground
 * (host I/O) and background (GC/housekeeping). A resource is busy
 * until the max of both, but the split lets the FIL grant foreground
 * ops suspend-style priority: when only background work blocks a die
 * or plane, the foreground op starts after a short suspend handshake
 * and the background occupancy is pushed out by the stolen window.
 *
 * Tracked background ops: the pool also keeps a registry of in-flight
 * background operations identified by stable FlashOpHandle values
 * (generation-tagged slots, never heap-allocated in steady state).
 * When a foreground op suspends background cell work or bumps a
 * background transfer off the channel, every live tracked op on the
 * affected die/channel has its completion pushed out by the stolen
 * window — so a handle always answers "when does this op *really*
 * finish", which is what lets the FTL's GC machines credit erased
 * blocks at the true erase-completion tick instead of the tick that
 * was latched at submit time.
 */

#ifndef HAMS_FLASH_NAND_PACKAGE_HH_
#define HAMS_FLASH_NAND_PACKAGE_HH_

#include <cstdint>
#include <vector>

#include "flash/nand_timing.hh"
#include "sim/types.hh"

namespace hams {

/** Operation counters consumed by the flash energy model. */
struct FlashActivity
{
    std::uint64_t reads = 0;
    std::uint64_t programs = 0;
    std::uint64_t erases = 0;
    std::uint64_t bytesTransferred = 0;

    /** @name Background (GC) share of the totals above. */
    ///@{
    std::uint64_t gcReads = 0;
    std::uint64_t gcPrograms = 0;
    std::uint64_t gcErases = 0;
    ///@}
    /** Background ops suspended so a foreground op could run. */
    std::uint64_t suspensions = 0;
};

/**
 * Stable identifier of a tracked in-flight background flash op.
 * Returned by Fil::submitTracked; resolves to the op's *current*
 * completion tick (suspension-extended) until released. Value-type,
 * trivially copyable; a default-constructed handle is invalid.
 */
struct FlashOpHandle
{
    std::uint32_t slot = 0;
    std::uint32_t gen = 0; //!< 0 is never a live generation

    bool valid() const { return gen != 0; }
};

/**
 * Busy-until bookkeeping for every die and plane in the complex.
 * Indexed by FlashAddress fields.
 */
class NandPackagePool
{
  public:
    explicit NandPackagePool(const FlashGeometry& geom);

    /** Earliest tick the die containing @p a can accept a command. */
    Tick dieFreeAt(const FlashAddress& a) const;

    /** Earliest tick plane @p a can start a cell operation. */
    Tick planeFreeAt(const FlashAddress& a) const;

    /** @name Foreground-only timelines (suspend-priority admission). */
    ///@{
    Tick dieFgFreeAt(const FlashAddress& a) const;
    Tick planeFgFreeAt(const FlashAddress& a) const;
    ///@}

    /** Reserve the die until @p until (foreground timeline). */
    void occupyDie(const FlashAddress& a, Tick until);

    /** Reserve the plane until @p until (foreground timeline). */
    void occupyPlane(const FlashAddress& a, Tick until);

    /** Reserve the die until @p until on the background timeline. */
    void occupyDieBg(const FlashAddress& a, Tick until);

    /** Reserve the plane until @p until on the background timeline. */
    void occupyPlaneBg(const FlashAddress& a, Tick until);

    /**
     * A foreground op suspended the background work pending on @p a:
     * push every background occupancy still live past @p from out by
     * @p delta (the stolen window, suspend handshake included), and
     * extend the completion of every tracked op on the same die that
     * was still in flight at @p from by the same window.
     */
    void pushBackgroundOut(const FlashAddress& a, Tick from, Tick delta);

    /** @name Tracked background ops (FlashOpHandle registry). */
    ///@{
    /**
     * Register a background op on @p a completing at @p completion
     * (the submit-time latch). The record lives — and keeps absorbing
     * suspension/bus-bump extensions — until releaseOp(). Slot reuse
     * is generation-tagged, so stale handles are detected, and the
     * arena never allocates once grown to the high-water mark.
     * @p transfer_tailed marks an op whose completion is a channel
     * data transfer (a read draining the die register): only those
     * are extended by bumpChannelOps — a program/erase completion is
     * cell work, already covered by the die push.
     */
    FlashOpHandle trackOp(const FlashAddress& a, Tick completion,
                          bool transfer_tailed);

    /** Current (suspension-extended) completion tick of a live op. */
    Tick completionOf(FlashOpHandle h) const;

    /** Retire a tracked op; its handle becomes invalid. */
    void releaseOp(FlashOpHandle h);

    /**
     * A foreground transfer bumped pending background transfers off
     * channel @p ch: extend *transfer-tailed* tracked ops on that
     * channel still in flight past @p from by @p delta. Ops whose
     * completion is cell work are untouched — extending them here
     * would double-count with the die push when one foreground op
     * both claims the channel and suspends the die.
     */
    void bumpChannelOps(std::uint32_t ch, Tick from, Tick delta);

    /** Live tracked ops (leak check for tests). */
    std::size_t liveTrackedOps() const { return liveOps.size(); }
    ///@}

    /** Clear all busy state and invalidate every handle (power cycle). */
    void reset();

    const FlashGeometry& geometry() const { return geom; }

  private:
    std::size_t dieIndex(const FlashAddress& a) const;
    std::size_t planeIndex(const FlashAddress& a) const;

    /** One tracked in-flight background op. */
    struct OpRecord
    {
        std::uint32_t gen = 1;
        bool live = false;
        bool transferTailed = false;
        std::uint32_t die = 0;
        std::uint32_t channel = 0;
        Tick completion = 0;
    };

    FlashGeometry geom;
    std::vector<Tick> dieFree;    //!< foreground timeline
    std::vector<Tick> planeFree;  //!< foreground timeline
    std::vector<Tick> dieBgFree;  //!< background timeline
    std::vector<Tick> planeBgFree;//!< background timeline

    std::vector<OpRecord> ops;          //!< handle arena
    std::vector<std::uint32_t> freeOps; //!< recycled arena slots
    std::vector<std::uint32_t> liveOps; //!< slots to scan on extension
};

} // namespace hams

#endif // HAMS_FLASH_NAND_PACKAGE_HH_

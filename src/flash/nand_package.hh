/**
 * @file
 * Per-die / per-plane busy-state tracking for a flash complex.
 *
 * Dies own a command/data register: a die is unavailable while a cell
 * operation (tR/tPROG/tERASE) runs or while its register is being
 * drained over the channel. Planes within a die operate independently
 * for cell work but share the die's register and channel port.
 *
 * Occupancy is tracked on two timelines per resource: foreground
 * (host I/O) and background (GC/housekeeping). A resource is busy
 * until the max of both, but the split lets the FIL grant foreground
 * ops suspend-style priority: when only background work blocks a die
 * or plane, the foreground op starts after a short suspend handshake
 * and the background occupancy is pushed out by the stolen window.
 */

#ifndef HAMS_FLASH_NAND_PACKAGE_HH_
#define HAMS_FLASH_NAND_PACKAGE_HH_

#include <cstdint>
#include <vector>

#include "flash/nand_timing.hh"
#include "sim/types.hh"

namespace hams {

/** Operation counters consumed by the flash energy model. */
struct FlashActivity
{
    std::uint64_t reads = 0;
    std::uint64_t programs = 0;
    std::uint64_t erases = 0;
    std::uint64_t bytesTransferred = 0;

    /** @name Background (GC) share of the totals above. */
    ///@{
    std::uint64_t gcReads = 0;
    std::uint64_t gcPrograms = 0;
    std::uint64_t gcErases = 0;
    ///@}
    /** Background ops suspended so a foreground op could run. */
    std::uint64_t suspensions = 0;
};

/**
 * Busy-until bookkeeping for every die and plane in the complex.
 * Indexed by FlashAddress fields.
 */
class NandPackagePool
{
  public:
    explicit NandPackagePool(const FlashGeometry& geom);

    /** Earliest tick the die containing @p a can accept a command. */
    Tick dieFreeAt(const FlashAddress& a) const;

    /** Earliest tick plane @p a can start a cell operation. */
    Tick planeFreeAt(const FlashAddress& a) const;

    /** @name Foreground-only timelines (suspend-priority admission). */
    ///@{
    Tick dieFgFreeAt(const FlashAddress& a) const;
    Tick planeFgFreeAt(const FlashAddress& a) const;
    ///@}

    /** Reserve the die until @p until (foreground timeline). */
    void occupyDie(const FlashAddress& a, Tick until);

    /** Reserve the plane until @p until (foreground timeline). */
    void occupyPlane(const FlashAddress& a, Tick until);

    /** Reserve the die until @p until on the background timeline. */
    void occupyDieBg(const FlashAddress& a, Tick until);

    /** Reserve the plane until @p until on the background timeline. */
    void occupyPlaneBg(const FlashAddress& a, Tick until);

    /**
     * A foreground op suspended the background work pending on @p a:
     * push every background occupancy still live past @p from out by
     * @p delta (the stolen window, suspend handshake included).
     */
    void pushBackgroundOut(const FlashAddress& a, Tick from, Tick delta);

    /** Clear all busy state (power cycle). */
    void reset();

    const FlashGeometry& geometry() const { return geom; }

  private:
    std::size_t dieIndex(const FlashAddress& a) const;
    std::size_t planeIndex(const FlashAddress& a) const;

    FlashGeometry geom;
    std::vector<Tick> dieFree;    //!< foreground timeline
    std::vector<Tick> planeFree;  //!< foreground timeline
    std::vector<Tick> dieBgFree;  //!< background timeline
    std::vector<Tick> planeBgFree;//!< background timeline
};

} // namespace hams

#endif // HAMS_FLASH_NAND_PACKAGE_HH_

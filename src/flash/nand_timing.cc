#include "flash/nand_timing.hh"

#include "sim/logging.hh"

namespace hams {

NandTiming
NandTiming::zNand()
{
    NandTiming t;
    t.tR = microseconds(3);
    t.tPROG = microseconds(100);
    t.tERASE = milliseconds(3);
    t.cmdOverhead = nanoseconds(200);
    t.tSuspend = microseconds(2); // Z-NAND suspends fast (SLC-mode cells)
    t.channelBandwidth = 1.2e9;
    return t;
}

NandTiming
NandTiming::vNand()
{
    NandTiming t;
    t.tR = microseconds(45);    // 15x the Z-NAND read time
    t.tPROG = microseconds(700); // 7x the Z-NAND program time
    t.tERASE = milliseconds(5);
    t.cmdOverhead = nanoseconds(300);
    t.channelBandwidth = 0.8e9;
    return t;
}

std::uint64_t
FlashAddress::parallelUnit(const FlashGeometry& g) const
{
    // Channel innermost: consecutive parallel units hit different
    // channels, so round-robin allocation stripes for bus parallelism.
    return ((std::uint64_t(plane) * g.diesPerPackage + die) *
                g.packagesPerChannel + package) * g.channels + channel;
}

FlashAddress
FlashAddress::decompose(std::uint64_t ppn, const FlashGeometry& g)
{
    if (ppn >= g.totalPages())
        panic("PPN ", ppn, " out of range (", g.totalPages(), " pages)");

    FlashAddress a;
    a.page = static_cast<std::uint32_t>(ppn % g.pagesPerBlock);
    ppn /= g.pagesPerBlock;
    a.block = static_cast<std::uint32_t>(ppn % g.blocksPerPlane);
    ppn /= g.blocksPerPlane;
    a.channel = static_cast<std::uint32_t>(ppn % g.channels);
    ppn /= g.channels;
    a.package = static_cast<std::uint32_t>(ppn % g.packagesPerChannel);
    ppn /= g.packagesPerChannel;
    a.die = static_cast<std::uint32_t>(ppn % g.diesPerPackage);
    ppn /= g.diesPerPackage;
    a.plane = static_cast<std::uint32_t>(ppn);
    return a;
}

std::uint64_t
FlashAddress::flatten(const FlashGeometry& g) const
{
    std::uint64_t ppn = plane;
    ppn = ppn * g.diesPerPackage + die;
    ppn = ppn * g.packagesPerChannel + package;
    ppn = ppn * g.channels + channel;
    ppn = ppn * g.blocksPerPlane + block;
    ppn = ppn * g.pagesPerBlock + page;
    return ppn;
}

} // namespace hams

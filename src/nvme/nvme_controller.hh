/**
 * @file
 * Device-side NVMe controller.
 *
 * Reacts to doorbell rings: fetches 64 B submission entries over the
 * host link, drives the SSD, DMAs data between host memory (the PRP
 * target) and the device, posts completions and raises MSI. All timing
 * flows through the link and host-memory models, so the PCIe-vs-DDR4
 * datapath difference between baseline and advanced HAMS falls out of
 * which link/DMA target the controller is wired to.
 */

#ifndef HAMS_NVME_NVME_CONTROLLER_HH_
#define HAMS_NVME_NVME_CONTROLLER_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/request.hh"
#include "mem/sparse_memory.hh"
#include "nvme/queue_pair.hh"
#include "pcie/pcie_link.hh"
#include "sim/annotations.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "ssd/ssd.hh"

namespace hams {

/**
 * Interface through which device DMA reaches host memory. In the HAMS
 * designs the target is the NVDIMM: the paper's address manager forwards
 * PRP-directed requests straight to it.
 */
class DmaTarget
{
  public:
    virtual ~DmaTarget() = default;

    /** Timed access to host memory at @p addr. */
    virtual Tick dmaAccess(Addr addr, std::uint32_t size, MemOp op,
                           Tick at) = 0;

    /** Functional bytes behind the timed interface (may be null). */
    virtual SparseMemory* dmaData() = 0;
};

/** Controller tuning. */
struct NvmeControllerConfig
{
    /** Command decode/dispatch time inside the controller. */
    Tick cmdProcessing = nanoseconds(500);
    /** Completion-side processing (CQE build, MSI). */
    Tick cplProcessing = nanoseconds(300);
};

/**
 * Where one command's latency went, reported with its completion so the
 * HAMS controller can attribute memory stalls (paper Fig. 18).
 */
struct NvmeCmdTrace
{
    Tick protocol = 0; //!< fetch, decode, CQE, MSI
    Tick dma = 0;      //!< data movement over the link + host memory
    Tick media = 0;    //!< SSD-internal service (buffer/FTL/flash)
};

/**
 * The NVMe controller bound to one SSD.
 *
 * Completion callbacks fire as DES events at the MSI arrival tick;
 * callers (the OS model or the HAMS NVMe engine) pop the CQ there.
 */
class NvmeController
{
  public:
    /** (queue id, completion, original command, latency trace, MSI tick). */
    using CompletionHandler = std::function<void(
        std::uint16_t, const NvmeCompletion&, const NvmeCommand&,
        const NvmeCmdTrace&, Tick)>;

    NvmeController(EventQueue& eq, Ssd& ssd, PcieLink& link,
                   DmaTarget& host, const NvmeControllerConfig& cfg = {});

    /** Register an I/O queue pair. @return its queue id. */
    std::uint16_t attachQueue(QueuePair* qp);

    /** Install the host-side completion handler (MSI vector). */
    void onCompletion(CompletionHandler handler);

    /**
     * Host rang the SQ tail doorbell of @p qid at tick @p at: fetch and
     * execute every pending entry.
     */
    HAMS_HOT_PATH void ringDoorbell(std::uint16_t qid, Tick at);

    /** Number of commands fetched but not yet completed. */
    std::uint32_t outstanding() const { return _outstanding; }

    /**
     * Drop in-flight work (power failure).
     *
     * @p events_dropped must be true iff the owning event queue was
     * reset (its pending events discarded): then the pooled contexts
     * those events referenced are reclaimed here. When the queue keeps
     * running (false), the now-stale events release their own contexts
     * on firing, and reclaiming early would double-free them.
     *
     * The flag is deliberately not defaulted: every caller states
     * which side of the contract it is on, and an inconsistent claim
     * is fatal — `true` while the queue still holds pending events
     * would double-free contexts when those events fire, `false`
     * with an already-empty queue would strand every live context
     * forever.
     */
    HAMS_COLD_PATH void powerFail(bool events_dropped);

    Ssd& ssd() { return _ssd; }

    /** @name Pool introspection (tests/bench). */
    ///@{
    std::size_t cplContextsAllocated() const { return cplPool.totalObjects(); }
    std::size_t dataContextsAllocated() const
    {
        return dataPool.totalObjects();
    }
    ///@}

  HAMS_HOT_PATH private:
    void execute(std::uint16_t qid, const NvmeCommand& cmd, Tick fetched);

    /**
     * Pooled context of one completion (CQE + MSI) event, so the event
     * callback captures only {this, ctx} and stays inside the inline
     * budget.
     */
    struct CplCtx
    {
        std::uint64_t epoch;
        std::uint16_t qid;
        QueuePair* qp;
        NvmeCompletion cqe;
        NvmeCommand cmd;
        NvmeCmdTrace trace;
        Tick msi;
    };

    /** Pooled context of one functional data-landing event. */
    struct DataCtx
    {
        std::uint64_t epoch;
        Addr prp;
        std::uint64_t slba;
        std::uint32_t blocks;
        std::uint64_t bytes;
        bool fua;
        std::vector<std::uint8_t> data; //!< reused; resize is a no-op
    };

    EventQueue& eq;
    Ssd& _ssd;
    PcieLink& link;
    DmaTarget& host;
    NvmeControllerConfig cfg;
    std::vector<QueuePair*> queues;
    CompletionHandler handler;
    std::uint32_t _outstanding = 0;
    std::uint64_t epoch = 0; //!< bumped on power failure to orphan events

    ObjectPool<CplCtx> cplPool;
    ObjectPool<DataCtx> dataPool;
    /** Doorbell fetch batch, reused across rings (swap-to-local). */
    std::vector<std::pair<NvmeCommand, Tick>> fetchScratch;
};

} // namespace hams

#endif // HAMS_NVME_NVME_CONTROLLER_HH_

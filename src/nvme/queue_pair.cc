#include "nvme/queue_pair.hh"

#include "sim/logging.hh"

namespace hams {

QueuePair::QueuePair(SparseMemory& backing, Addr sq_base, Addr cq_base,
                     std::uint16_t entries)
    : backing(backing), _sqBase(sq_base), _cqBase(cq_base), _entries(entries)
{
    if (entries < 2)
        fatal("queue pair needs at least 2 entries");
}

bool
QueuePair::sqFull() const
{
    return static_cast<std::uint16_t>((_sqTail + 1) % _entries) == _sqHead;
}

std::uint16_t
QueuePair::sqDepth() const
{
    return static_cast<std::uint16_t>(
        (_sqTail + _entries - _sqHead) % _entries);
}

std::uint16_t
QueuePair::push(const NvmeCommand& cmd)
{
    if (sqFull())
        panic("push to full SQ");
    std::uint16_t slot = _sqTail;
    backing.write(_sqBase + Addr(slot) * sizeof(NvmeCommand), &cmd,
                  sizeof(cmd));
    _sqTail = static_cast<std::uint16_t>((_sqTail + 1) % _entries);
    return slot;
}

bool
QueuePair::hasWork() const
{
    return _sqHead != _sqTail;
}

NvmeCommand
QueuePair::fetch()
{
    if (!hasWork())
        panic("fetch from empty SQ");
    NvmeCommand cmd;
    backing.read(_sqBase + Addr(_sqHead) * sizeof(NvmeCommand), &cmd,
                 sizeof(cmd));
    _sqHead = static_cast<std::uint16_t>((_sqHead + 1) % _entries);
    return cmd;
}

void
QueuePair::complete(NvmeCompletion cqe)
{
    cqe.encode(cqe.statusCode(), cqPhase);
    cqe.sqHead = _sqHead;
    backing.write(_cqBase + Addr(_cqTail) * sizeof(NvmeCompletion), &cqe,
                  sizeof(cqe));
    _cqTail = static_cast<std::uint16_t>((_cqTail + 1) % _entries);
    if (_cqTail == 0)
        cqPhase = !cqPhase;
}

std::optional<NvmeCompletion>
QueuePair::popCompletion()
{
    if (_cqHead == _cqTail)
        return std::nullopt;
    NvmeCompletion cqe;
    backing.read(_cqBase + Addr(_cqHead) * sizeof(NvmeCompletion), &cqe,
                 sizeof(cqe));
    _cqHead = static_cast<std::uint16_t>((_cqHead + 1) % _entries);
    return cqe;
}

NvmeCommand
QueuePair::readSlot(std::uint16_t idx) const
{
    if (idx >= _entries)
        panic("SQ slot ", idx, " out of range");
    NvmeCommand cmd;
    backing.read(_sqBase + Addr(idx) * sizeof(NvmeCommand), &cmd,
                 sizeof(cmd));
    return cmd;
}

void
QueuePair::writeSlot(std::uint16_t idx, const NvmeCommand& cmd)
{
    if (idx >= _entries)
        panic("SQ slot ", idx, " out of range");
    backing.write(_sqBase + Addr(idx) * sizeof(NvmeCommand), &cmd,
                  sizeof(cmd));
}

void
QueuePair::resetPointers()
{
    _sqHead = _sqTail = _cqHead = _cqTail = 0;
    cqPhase = true;
}

} // namespace hams

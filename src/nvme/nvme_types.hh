/**
 * @file
 * NVMe command set structures (subset sufficient for HAMS).
 *
 * Commands are fixed 64-byte records as in the NVMe 1.x submission queue
 * entry format; completions are 16-byte records. HAMS repurposes one
 * reserved dword as the journal tag that drives power-failure recovery
 * (paper SSV-C).
 */

#ifndef HAMS_NVME_NVME_TYPES_HH_
#define HAMS_NVME_NVME_TYPES_HH_

#include <cstdint>

#include "sim/types.hh"

namespace hams {

/** NVMe I/O opcodes (NVM command set). */
enum class NvmeOpcode : std::uint8_t {
    Flush = 0x00,
    Write = 0x01,
    Read = 0x02,
};

/** Completion status codes (generic command set). */
enum class NvmeStatus : std::uint16_t {
    Success = 0x0,
    InternalError = 0x6,
    AbortedByPower = 0x371, // vendor: lost to power failure
};

/**
 * A 64-byte submission queue entry.
 *
 * Field layout loosely follows the spec dwords; `journalTag` occupies a
 * reserved dword (DW2) exactly as HAMS does, so it persists wherever the
 * SQ ring lives — in HAMS, the MMU-invisible pinned NVDIMM region.
 */
struct NvmeCommand
{
    std::uint8_t opcode = 0;            // DW0[7:0]
    std::uint8_t fuse = 0;              // DW0[9:8]
    std::uint16_t cid = 0;              // DW0[31:16]
    std::uint32_t nsid = 1;             // DW1
    std::uint32_t journalTag = 0;       // DW2 (reserved; HAMS journal)
    std::uint32_t reserved3 = 0;        // DW3
    std::uint64_t metadataPtr = 0;      // DW4-5
    std::uint64_t prp1 = 0;             // DW6-7
    std::uint64_t prp2 = 0;             // DW8-9
    std::uint64_t slba = 0;             // DW10-11
    std::uint16_t nlb = 0;              // DW12[15:0], 0's based
    std::uint16_t control = 0;          // DW12[31:16] (bit 14 = FUA)
    std::uint32_t dsm = 0;              // DW13
    std::uint32_t reserved14 = 0;       // DW14
    std::uint32_t reserved15 = 0;       // DW15

    static constexpr std::uint16_t fuaBit = 1u << 14;

    bool fua() const { return control & fuaBit; }
    void setFua(bool on)
    {
        control = on ? (control | fuaBit)
                     : static_cast<std::uint16_t>(control & ~fuaBit);
    }

    NvmeOpcode op() const { return static_cast<NvmeOpcode>(opcode); }

    /** Number of logical blocks (the field is zero-based). */
    std::uint32_t blockCount() const { return std::uint32_t(nlb) + 1; }
};

static_assert(sizeof(NvmeCommand) == 64, "SQ entries must be 64 bytes");

/** A 16-byte completion queue entry. */
struct NvmeCompletion
{
    std::uint32_t result = 0;     // DW0 command specific
    std::uint32_t reserved = 0;   // DW1
    std::uint16_t sqHead = 0;     // DW2[15:0]
    std::uint16_t sqId = 0;       // DW2[31:16]
    std::uint16_t cid = 0;        // DW3[15:0]
    std::uint16_t status = 0;     // DW3[31:16] (includes phase bit 0)

    static constexpr std::uint16_t phaseBit = 1u;

    bool phase() const { return status & phaseBit; }
    NvmeStatus statusCode() const
    {
        return static_cast<NvmeStatus>(status >> 1);
    }
    void
    encode(NvmeStatus sc, bool phase_tag)
    {
        status = static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(sc) << 1) | (phase_tag ? 1 : 0));
    }
};

static_assert(sizeof(NvmeCompletion) == 16, "CQ entries must be 16 bytes");

/** Logical block size used throughout (NVMe format 4 KiB). */
constexpr std::uint32_t nvmeBlockSize = 4096;

/** Helpers for building common commands. */
NvmeCommand makeReadCommand(std::uint16_t cid, std::uint64_t slba,
                            std::uint32_t blocks, std::uint64_t prp1);
NvmeCommand makeWriteCommand(std::uint16_t cid, std::uint64_t slba,
                             std::uint32_t blocks, std::uint64_t prp1,
                             bool fua = false);
NvmeCommand makeFlushCommand(std::uint16_t cid);

} // namespace hams

#endif // HAMS_NVME_NVME_TYPES_HH_

#include "nvme/nvme_controller.hh"

#include <utility>

#include "sim/logging.hh"

namespace hams {

NvmeController::NvmeController(EventQueue& eq, Ssd& ssd, PcieLink& link,
                               DmaTarget& host,
                               const NvmeControllerConfig& cfg)
    : eq(eq), _ssd(ssd), link(link), host(host), cfg(cfg)
{
}

std::uint16_t
NvmeController::attachQueue(QueuePair* qp)
{
    queues.push_back(qp);
    return static_cast<std::uint16_t>(queues.size() - 1);
}

void
NvmeController::onCompletion(CompletionHandler h)
{
    handler = std::move(h);
}

void
NvmeController::ringDoorbell(std::uint16_t qid, Tick at)
{
    if (qid >= queues.size())
        panic("doorbell for unknown queue ", qid);
    QueuePair* qp = queues[qid];

    // The doorbell MMIO write crosses the link first.
    Tick db_at_device = link.signal(at);

    // Fetch every pending SQE before executing any command: the fetches
    // happen early on the wire, and executing in between would let one
    // command's (later) data DMA reserve host memory ahead of the next
    // command's (earlier) fetch in the analytic resource model.
    // Swap-to-local reuses the batch buffer's capacity while staying
    // safe against reentrant rings.
    std::vector<std::pair<NvmeCommand, Tick>> batch;
    batch.swap(fetchScratch);
    batch.clear();
    while (qp->hasWork()) {
        std::uint16_t slot = qp->sqHead();
        NvmeCommand cmd = qp->fetch();
        Addr sqe_addr = qp->sqBase() + Addr(slot) * sizeof(NvmeCommand);
        Tick mem_done = host.dmaAccess(sqe_addr, sizeof(NvmeCommand),
                                       MemOp::Read, db_at_device);
        Tick fetched = link.transfer(sizeof(NvmeCommand), LinkDir::ToDevice,
                                     mem_done);
        batch.emplace_back(cmd, fetched + cfg.cmdProcessing);
    }
    for (auto& [cmd, start] : batch)
        execute(qid, cmd, start);
    batch.clear();
    fetchScratch.swap(batch);
}

void
NvmeController::execute(std::uint16_t qid, const NvmeCommand& cmd,
                        Tick start)
{
    ++_outstanding;
    QueuePair* qp = queues[qid];
    std::uint64_t bytes =
        std::uint64_t(cmd.blockCount()) * nvmeBlockSize;
    NvmeCmdTrace trace;
    trace.protocol = cfg.cmdProcessing + cfg.cplProcessing;

    // PRP lists beyond two entries need an extra host read to walk.
    if (cmd.blockCount() > 2) {
        Tick walked = host.dmaAccess(cmd.prp2 ? cmd.prp2 : cmd.prp1, 64,
                                     MemOp::Read, start);
        trace.protocol += walked - start;
        start = walked;
    }

    Tick done = start;
    std::uint64_t my_epoch = epoch;
    bool functional = host.dmaData() && _ssd.config().functionalData;

    switch (cmd.op()) {
      case NvmeOpcode::Read: {
        Tick media_done;
        DataCtx* dctx = nullptr;
        if (functional) {
            dctx = dataPool.acquire();
            dctx->epoch = my_epoch;
            dctx->prp = cmd.prp1;
            dctx->bytes = bytes;
            HAMS_LINT_SUPPRESS("pooled-context staging buffer: capacity "
                               "is retained across pool recycles and "
                               "grows only to the largest transfer")
            dctx->data.resize(bytes);
            media_done = _ssd.hostRead(cmd.slba, cmd.blockCount(), start,
                                       dctx->data.data());
        } else {
            media_done = _ssd.hostRead(cmd.slba, cmd.blockCount(), start);
        }
        trace.media = media_done - start;
        // Data DMA device -> host, then the host-memory write.
        Tick link_done = link.transfer(bytes, LinkDir::ToHost, media_done);
        done = host.dmaAccess(cmd.prp1, static_cast<std::uint32_t>(bytes),
                              MemOp::Write, link_done);
        trace.dma = done - media_done;
        if (dctx) {
            // Bytes land in host memory when the DMA completes.
            eq.scheduleAt(done, [this, dctx]() {
                if (dctx->epoch == epoch)
                    host.dmaData()->write(dctx->prp, dctx->data.data(),
                                          dctx->bytes);
                dataPool.release(dctx);
            });
        }
        break;
      }
      case NvmeOpcode::Write: {
        // Data DMA host -> device: host-memory read + upstream transfer.
        // The device observes host bytes only when the DMA completes —
        // that pull-vs-overwrite window is exactly what the HAMS
        // PRP-pool cloning protects (paper SSV-B, Fig. 13).
        Tick mem_done = host.dmaAccess(cmd.prp1,
                                       static_cast<std::uint32_t>(bytes),
                                       MemOp::Read, start);
        Tick dma_done = link.transfer(bytes, LinkDir::ToDevice, mem_done);
        trace.dma = dma_done - start;
        done = _ssd.hostWrite(cmd.slba, cmd.blockCount(), cmd.fua(),
                              dma_done);
        trace.media = done - dma_done;
        if (functional) {
            DataCtx* dctx = dataPool.acquire();
            dctx->epoch = my_epoch;
            dctx->prp = cmd.prp1;
            dctx->slba = cmd.slba;
            dctx->blocks = cmd.blockCount();
            dctx->bytes = bytes;
            dctx->fua = cmd.fua();
            eq.scheduleAt(dma_done, [this, dctx]() {
                if (dctx->epoch == epoch) {
                    HAMS_LINT_SUPPRESS("pooled-context staging buffer: "
                                       "capacity is retained across pool "
                                       "recycles and grows only to the "
                                       "largest transfer")
                    dctx->data.resize(dctx->bytes);
                    host.dmaData()->read(dctx->prp, dctx->data.data(),
                                         dctx->bytes);
                    _ssd.pokeWrite(dctx->slba, dctx->blocks, dctx->fua,
                                   dctx->data.data());
                }
                dataPool.release(dctx);
            });
        }
        break;
      }
      case NvmeOpcode::Flush:
        done = _ssd.hostFlush(start);
        trace.media = done - start;
        break;
      default:
        panic("unsupported NVMe opcode ", int(cmd.opcode));
    }

    // Post the CQE (16 B upstream + host write) and raise MSI.
    Tick cqe_link = link.transfer(sizeof(NvmeCompletion), LinkDir::ToHost,
                                  done + cfg.cplProcessing);
    Tick cqe_mem = host.dmaAccess(qp->cqBase(), sizeof(NvmeCompletion),
                                  MemOp::Write, cqe_link);
    Tick msi = link.signal(cqe_mem);
    trace.protocol += msi - (done + cfg.cplProcessing);

    CplCtx* ctx = cplPool.acquire();
    ctx->epoch = my_epoch;
    ctx->qid = qid;
    ctx->qp = qp;
    ctx->cqe = NvmeCompletion{};
    ctx->cqe.cid = cmd.cid;
    ctx->cqe.encode(NvmeStatus::Success, true);
    ctx->cmd = cmd;
    ctx->trace = trace;
    ctx->msi = msi;

    eq.scheduleAt(msi, [this, ctx]() {
        if (ctx->epoch != epoch) {
            cplPool.release(ctx);
            return;
        }
        // Copy out and release first: the handler may submit new
        // commands and reuse this context.
        std::uint16_t q = ctx->qid;
        QueuePair* queue = ctx->qp;
        NvmeCompletion cqe = ctx->cqe;
        NvmeCommand command = ctx->cmd;
        NvmeCmdTrace tr = ctx->trace;
        Tick when = ctx->msi;
        cplPool.release(ctx);

        queue->complete(cqe);
        if (_outstanding > 0)
            --_outstanding;
        if (handler)
            handler(q, cqe, command, tr, when);
    });
}

void
NvmeController::powerFail(bool events_dropped)
{
    // The flag is a claim about the event queue's state; verify it.
    // An inconsistent claim is how context double-frees (dropped=true
    // with events still pending) or permanent context leaks
    // (dropped=false after the queue was reset) start.
    if (events_dropped && eq.pending() != 0)
        fatal("NvmeController::powerFail(events_dropped=true) with ",
              eq.pending(), " events still pending: reset the event "
              "queue before declaring its events dropped");
    std::size_t live = cplPool.liveObjects() + dataPool.liveObjects();
    if (!events_dropped && eq.pending() == 0 && live != 0)
        fatal("NvmeController::powerFail(events_dropped=false) with an "
              "empty event queue would strand ", live,
              " live contexts: no event remains to release them");
    // Orphan every in-flight completion event; the SSD handles its own
    // buffer fate.
    ++epoch;
    _outstanding = 0;
    if (events_dropped) {
        // The event queue was reset, so the events that would have
        // released these contexts are gone: take them all back.
        cplPool.reclaimAll();
        dataPool.reclaimAll();
    }
    // Otherwise the stale events still fire, observe the epoch
    // mismatch, and release their contexts themselves.
}

} // namespace hams

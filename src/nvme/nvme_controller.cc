#include "nvme/nvme_controller.hh"

#include <memory>

#include "sim/logging.hh"

namespace hams {

NvmeController::NvmeController(EventQueue& eq, Ssd& ssd, PcieLink& link,
                               DmaTarget& host,
                               const NvmeControllerConfig& cfg)
    : eq(eq), _ssd(ssd), link(link), host(host), cfg(cfg)
{
}

std::uint16_t
NvmeController::attachQueue(QueuePair* qp)
{
    queues.push_back(qp);
    return static_cast<std::uint16_t>(queues.size() - 1);
}

void
NvmeController::onCompletion(CompletionHandler h)
{
    handler = std::move(h);
}

void
NvmeController::ringDoorbell(std::uint16_t qid, Tick at)
{
    if (qid >= queues.size())
        panic("doorbell for unknown queue ", qid);
    QueuePair* qp = queues[qid];

    // The doorbell MMIO write crosses the link first.
    Tick db_at_device = link.signal(at);

    // Fetch every pending SQE before executing any command: the fetches
    // happen early on the wire, and executing in between would let one
    // command's (later) data DMA reserve host memory ahead of the next
    // command's (earlier) fetch in the analytic resource model.
    std::vector<std::pair<NvmeCommand, Tick>> fetched_cmds;
    while (qp->hasWork()) {
        std::uint16_t slot = qp->sqHead();
        NvmeCommand cmd = qp->fetch();
        Addr sqe_addr = qp->sqBase() + Addr(slot) * sizeof(NvmeCommand);
        Tick mem_done = host.dmaAccess(sqe_addr, sizeof(NvmeCommand),
                                       MemOp::Read, db_at_device);
        Tick fetched = link.transfer(sizeof(NvmeCommand), LinkDir::ToDevice,
                                     mem_done);
        fetched_cmds.emplace_back(cmd, fetched + cfg.cmdProcessing);
    }
    for (auto& [cmd, start] : fetched_cmds)
        execute(qid, cmd, start);
}

void
NvmeController::execute(std::uint16_t qid, const NvmeCommand& cmd,
                        Tick start)
{
    ++_outstanding;
    QueuePair* qp = queues[qid];
    std::uint64_t bytes =
        std::uint64_t(cmd.blockCount()) * nvmeBlockSize;
    NvmeCmdTrace trace;
    trace.protocol = cfg.cmdProcessing + cfg.cplProcessing;

    // PRP lists beyond two entries need an extra host read to walk.
    if (cmd.blockCount() > 2) {
        Tick walked = host.dmaAccess(cmd.prp2 ? cmd.prp2 : cmd.prp1, 64,
                                     MemOp::Read, start);
        trace.protocol += walked - start;
        start = walked;
    }

    Tick done = start;
    std::uint64_t my_epoch = epoch;

    switch (cmd.op()) {
      case NvmeOpcode::Read: {
        Tick media_done;
        auto buf = std::make_shared<std::vector<std::uint8_t>>();
        if (host.dmaData() && _ssd.config().functionalData) {
            buf->resize(bytes);
            media_done = _ssd.hostRead(cmd.slba, cmd.blockCount(), start,
                                       buf->data());
        } else {
            media_done = _ssd.hostRead(cmd.slba, cmd.blockCount(), start);
        }
        trace.media = media_done - start;
        // Data DMA device -> host, then the host-memory write.
        Tick link_done = link.transfer(bytes, LinkDir::ToHost, media_done);
        done = host.dmaAccess(cmd.prp1, static_cast<std::uint32_t>(bytes),
                              MemOp::Write, link_done);
        trace.dma = done - media_done;
        if (!buf->empty()) {
            // Bytes land in host memory when the DMA completes.
            Addr prp = cmd.prp1;
            eq.scheduleAt(done, [this, my_epoch, prp, buf]() {
                if (my_epoch != epoch)
                    return;
                host.dmaData()->write(prp, buf->data(), buf->size());
            });
        }
        break;
      }
      case NvmeOpcode::Write: {
        // Data DMA host -> device: host-memory read + upstream transfer.
        // The device observes host bytes only when the DMA completes —
        // that pull-vs-overwrite window is exactly what the HAMS
        // PRP-pool cloning protects (paper SSV-B, Fig. 13).
        Tick mem_done = host.dmaAccess(cmd.prp1,
                                       static_cast<std::uint32_t>(bytes),
                                       MemOp::Read, start);
        Tick dma_done = link.transfer(bytes, LinkDir::ToDevice, mem_done);
        trace.dma = dma_done - start;
        done = _ssd.hostWrite(cmd.slba, cmd.blockCount(), cmd.fua(),
                              dma_done);
        trace.media = done - dma_done;
        if (host.dmaData() && _ssd.config().functionalData) {
            Addr prp = cmd.prp1;
            std::uint64_t slba = cmd.slba;
            std::uint32_t blocks = cmd.blockCount();
            bool fua = cmd.fua();
            eq.scheduleAt(dma_done, [this, my_epoch, prp, slba, blocks,
                                     fua, bytes]() {
                if (my_epoch != epoch)
                    return;
                std::vector<std::uint8_t> data(bytes);
                host.dmaData()->read(prp, data.data(), bytes);
                _ssd.pokeWrite(slba, blocks, fua, data.data());
            });
        }
        break;
      }
      case NvmeOpcode::Flush:
        done = _ssd.hostFlush(start);
        trace.media = done - start;
        break;
      default:
        panic("unsupported NVMe opcode ", int(cmd.opcode));
    }

    // Post the CQE (16 B upstream + host write) and raise MSI.
    Tick cqe_link = link.transfer(sizeof(NvmeCompletion), LinkDir::ToHost,
                                  done + cfg.cplProcessing);
    Tick cqe_mem = host.dmaAccess(qp->cqBase(), sizeof(NvmeCompletion),
                                  MemOp::Write, cqe_link);
    Tick msi = link.signal(cqe_mem);
    trace.protocol += msi - (done + cfg.cplProcessing);

    NvmeCompletion cqe;
    cqe.cid = cmd.cid;
    cqe.encode(NvmeStatus::Success, true);

    eq.scheduleAt(msi, [this, my_epoch, qid, qp, cqe, cmd, trace, msi]() {
        if (my_epoch != epoch)
            return;
        qp->complete(cqe);
        if (_outstanding > 0)
            --_outstanding;
        if (handler)
            handler(qid, cqe, cmd, trace, msi);
    });
}

void
NvmeController::powerFail()
{
    // Orphan every in-flight completion event; the SSD handles its own
    // buffer fate.
    ++epoch;
    _outstanding = 0;
}

} // namespace hams

#include "nvme/nvme_types.hh"

namespace hams {

NvmeCommand
makeReadCommand(std::uint16_t cid, std::uint64_t slba, std::uint32_t blocks,
                std::uint64_t prp1)
{
    NvmeCommand c;
    c.opcode = static_cast<std::uint8_t>(NvmeOpcode::Read);
    c.cid = cid;
    c.slba = slba;
    c.nlb = static_cast<std::uint16_t>(blocks - 1);
    c.prp1 = prp1;
    return c;
}

NvmeCommand
makeWriteCommand(std::uint16_t cid, std::uint64_t slba, std::uint32_t blocks,
                 std::uint64_t prp1, bool fua)
{
    NvmeCommand c;
    c.opcode = static_cast<std::uint8_t>(NvmeOpcode::Write);
    c.cid = cid;
    c.slba = slba;
    c.nlb = static_cast<std::uint16_t>(blocks - 1);
    c.prp1 = prp1;
    c.setFua(fua);
    return c;
}

NvmeCommand
makeFlushCommand(std::uint16_t cid)
{
    NvmeCommand c;
    c.opcode = static_cast<std::uint8_t>(NvmeOpcode::Flush);
    c.cid = cid;
    return c;
}

} // namespace hams

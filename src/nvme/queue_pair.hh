/**
 * @file
 * NVMe submission/completion queue pair.
 *
 * The rings are plain FIFO arrays living in real (simulated) memory: the
 * host posts 64 B SQ entries at the tail and rings a doorbell; the device
 * consumes from the head, posts 16 B CQ entries, and signals MSI. Backing
 * the rings with a SparseMemory region is what lets HAMS scan the SQ
 * after a power failure and find commands whose journal tag is still set.
 */

#ifndef HAMS_NVME_QUEUE_PAIR_HH_
#define HAMS_NVME_QUEUE_PAIR_HH_

#include <cstdint>
#include <optional>

#include "mem/sparse_memory.hh"
#include "nvme/nvme_types.hh"
#include "sim/annotations.hh"
#include "sim/types.hh"

namespace hams {

/**
 * One SQ/CQ pair with explicit head/tail registers.
 *
 * The ring contents live in @p backing at the given base addresses so
 * they share the fate of that memory across power events. Head/tail
 * state mirrors the doorbell registers; recovery code re-derives pending
 * work from the ring contents plus the journal tags.
 */
class QueuePair
{
  public:
    /**
     * @param backing memory that holds both rings (e.g. the pinned
     *                NVDIMM region)
     * @param sq_base byte address of the SQ ring
     * @param cq_base byte address of the CQ ring
     * @param entries ring size (entries), applies to both queues
     */
    QueuePair(SparseMemory& backing, Addr sq_base, Addr cq_base,
              std::uint16_t entries);

    /** @name Host-side operations. */
    ///@{
    /** True if the SQ has room for another entry. */
    HAMS_HOT_PATH bool sqFull() const;

    /** Number of occupied SQ slots. */
    HAMS_HOT_PATH std::uint16_t sqDepth() const;

    /**
     * Write @p cmd at the SQ tail and advance it (the doorbell write is
     * timed by the caller).
     * @return the slot index used.
     */
    HAMS_HOT_PATH std::uint16_t push(const NvmeCommand& cmd);

    /** Consume one completion at the CQ head, if any. */
    HAMS_HOT_PATH std::optional<NvmeCompletion> popCompletion();
    ///@}

    /** @name Device-side operations. */
    ///@{
    /** True if un-fetched submissions remain. */
    HAMS_HOT_PATH bool hasWork() const;

    /** Fetch the command at the SQ head and advance the head. */
    HAMS_HOT_PATH NvmeCommand fetch();

    /** Post a completion at the CQ tail (sets the phase bit). */
    HAMS_HOT_PATH void complete(NvmeCompletion cqe);
    ///@}

    /** @name Raw ring state (recovery + tests). */
    ///@{
    std::uint16_t sqHead() const { return _sqHead; }
    std::uint16_t sqTail() const { return _sqTail; }
    std::uint16_t cqHead() const { return _cqHead; }
    std::uint16_t cqTail() const { return _cqTail; }
    std::uint16_t entries() const { return _entries; }
    Addr sqBase() const { return _sqBase; }
    Addr cqBase() const { return _cqBase; }

    /** Read an SQ slot directly (recovery scan). */
    HAMS_HOT_PATH NvmeCommand readSlot(std::uint16_t idx) const;

    /** Overwrite an SQ slot directly (journal tag updates). */
    HAMS_HOT_PATH void writeSlot(std::uint16_t idx, const NvmeCommand& cmd);

    /**
     * Reset pointer state after a power cycle, as the HAMS init sequence
     * does: ring contents in persistent memory survive; volatile
     * head/tail registers do not.
     */
    HAMS_COLD_PATH void resetPointers();
    ///@}

  private:
    SparseMemory& backing;
    Addr _sqBase;
    Addr _cqBase;
    std::uint16_t _entries;
    std::uint16_t _sqHead = 0;
    std::uint16_t _sqTail = 0;
    std::uint16_t _cqHead = 0;
    std::uint16_t _cqTail = 0;
    bool cqPhase = true;
};

} // namespace hams

#endif // HAMS_NVME_QUEUE_PAIR_HH_

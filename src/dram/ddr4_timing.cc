#include "dram/ddr4_timing.hh"

#include "sim/logging.hh"

namespace hams {

Ddr4Timing
Ddr4Timing::speedGrade(std::uint32_t data_rate_mts)
{
    if (data_rate_mts < 1600 || data_rate_mts > 3200)
        fatal("unsupported DDR4 speed grade ", data_rate_mts);

    Ddr4Timing t;
    t.dataRateMts = data_rate_mts;
    // Clock runs at half the transfer rate (double data rate).
    t.tCK = static_cast<Tick>(2.0e6 / data_rate_mts * 1e3) / 1000;
    t.tCK = static_cast<Tick>(2.0e12 / (data_rate_mts * 1e6));

    // JEDEC first-bin CAS latencies land near 13.5-14.3 ns regardless of
    // grade; use 14 ns class timings like the paper's DDR4-2133 CL15.
    t.tCL = nanoseconds(14.06);
    t.tRCD = nanoseconds(14.06);
    t.tRP = nanoseconds(14.06);
    t.tRAS = nanoseconds(33);
    t.tWR = nanoseconds(15);
    t.tBURST = 4 * t.tCK; // BL8 on a double data rate bus
    t.tRFC = nanoseconds(350);
    t.tREFI = microseconds(7.8);
    return t;
}

} // namespace hams

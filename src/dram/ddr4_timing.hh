/**
 * @file
 * DDR4 timing parameters (JESD79-4 style).
 *
 * Parameters are derived from a speed grade (MT/s) plus CAS latency so
 * configurations such as the paper's DDR4-2133 NVDIMM and a DDR4-2666
 * channel are one-liners.
 */

#ifndef HAMS_DRAM_DDR4_TIMING_HH_
#define HAMS_DRAM_DDR4_TIMING_HH_

#include <cstdint>

#include "sim/types.hh"

namespace hams {

/**
 * Timing and geometry of one DDR4 channel.
 *
 * All latencies in Ticks (ps). The data bus is 64 bits wide and each
 * BL8 burst moves 64 bytes.
 */
struct Ddr4Timing
{
    std::uint32_t dataRateMts = 2133;   //!< transfers per second (millions)
    std::uint32_t banks = 16;           //!< banks per rank
    std::uint32_t ranks = 2;            //!< ranks per channel
    std::uint64_t rowBufferBytes = 8192; //!< page size per bank

    Tick tCK = 0;      //!< clock period
    Tick tCL = 0;      //!< CAS latency
    Tick tRCD = 0;     //!< RAS-to-CAS
    Tick tRP = 0;      //!< row precharge
    Tick tRAS = 0;     //!< row active time
    Tick tBURST = 0;   //!< BL8 data burst occupancy
    Tick tWR = 0;      //!< write recovery
    Tick tRFC = 0;     //!< refresh cycle time
    Tick tREFI = 0;    //!< refresh interval

    /** Fill latency fields for a speed grade with typical JEDEC values. */
    static Ddr4Timing speedGrade(std::uint32_t data_rate_mts);

    /** Peak bandwidth of the channel in bytes per second. */
    double peakBandwidth() const { return dataRateMts * 1e6 * 8.0; }

    /** Bytes moved per BL8 burst. */
    static constexpr std::uint32_t burstBytes = 64;
};

} // namespace hams

#endif // HAMS_DRAM_DDR4_TIMING_HH_

/**
 * @file
 * NVDIMM-N model: DRAM devices plus a supercapacitor-powered flash
 * backup path (JEDEC DDR4 NVDIMM-N design standard).
 *
 * During normal operation the module is indistinguishable from an
 * RDIMM. On power failure the on-DIMM controller isolates the DRAM via
 * multiplexers and streams its contents to the on-DIMM flash; on the
 * next boot it restores them. Both take tens of seconds for an 8 GB
 * module, which the model reproduces from the backup bandwidth.
 *
 * Restore comes in two flavours:
 *
 *  - powerRestore(): the legacy stop-the-world restore — the module is
 *    Operational when the call returns and the caller charges the full
 *    restore time up front.
 *  - beginRestore(): the incremental engine. The module restores
 *    itself restoreFrameBytes at a time as events on the caller's
 *    queue, tracking progress in a per-frame restored-bitmap. Accesses
 *    to restored frames are legal mid-restore; an access to an
 *    unrestored frame is a model bug (the caller must stall it) and is
 *    fatal. requestRestoreSpan() jumps a frame ahead of the background
 *    cursor — the on-demand path a stalled access rides. All restore
 *    work (cursor batches and priority frames) serialises on the one
 *    on-DIMM flash stream, so the total restore time is unchanged;
 *    only the order is demand-driven.
 */

#ifndef HAMS_DRAM_NVDIMM_HH_
#define HAMS_DRAM_NVDIMM_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/memory_controller.hh"
#include "mem/sparse_memory.hh"
#include "sim/annotations.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace hams {

/** Configuration for an NVDIMM-N module. */
struct NvdimmConfig
{
    std::uint64_t capacity = 8ull << 30;
    std::uint32_t speedGradeMts = 2133;
    /** On-DIMM backup flash streaming bandwidth (bytes/s). */
    double backupBandwidth = 400e6;
    /** Whether to allocate a functional backing store. */
    bool functionalData = true;
    /** Incremental-restore granule (restored-bitmap frame size). */
    std::uint32_t restoreFrameBytes = 1u << 20;
    /** Frames the background restore cursor claims per batch event. */
    std::uint32_t restoreBatchFrames = 4;
};

/**
 * A persistent DDR4 module. Exposes timing via the embedded controller
 * and data via an optional functional store; powerFail()/powerRestore()
 * drive the backup/restore state machine used by the persistence tests.
 */
class Nvdimm
{
  public:
    enum class State { Operational, BackingUp, Protected, Restoring };

    /** Restored-frame announcement: (first frame, frame count, tick). */
    using RestoreNotify =
        InlineFunction<void(std::uint64_t, std::uint64_t, Tick)>;
    /** Restore-complete announcement. */
    using RestoreDone = InlineFunction<void(Tick)>;

    explicit Nvdimm(const NvdimmConfig& cfg);

    /**
     * Timed access; legal while Operational, or while Restoring if the
     * touched span is already restored (the caller stalls accesses to
     * unrestored frames — serving them would return stale bytes).
     */
    HAMS_HOT_PATH Tick access(Addr addr, std::uint32_t size, MemOp op, Tick at);

    /** @name Functional data plane (null if functionalData=false). */
    ///@{
    SparseMemory* data() { return store.get(); }
    const SparseMemory* data() const { return store.get(); }
    ///@}

    /**
     * Simulate loss of host power. The supercap keeps the module alive
     * while DRAM contents stream to the on-DIMM flash. Legal while
     * Operational (full backup) or Restoring (second failure
     * mid-restore: only the restored prefix may carry fresh writes, so
     * the re-backup cost is proportional to the frames restored; the
     * unrestored remainder is still safe in the on-DIMM flash).
     * @return time the backup takes.
     */
    HAMS_COLD_PATH Tick powerFail();

    /**
     * Stop-the-world restore on the next boot: the module is
     * Operational on return. Fatal with context unless Protected — in
     * particular a double restore (already Operational) is a caller
     * bug, mirroring the component-level powerFail contract.
     * @return time the restore takes.
     */
    HAMS_COLD_PATH Tick powerRestore();

    /** @name Incremental restore engine. */
    ///@{
    /**
     * Begin an event-driven restore on @p eq. The background cursor
     * claims restoreBatchFrames at a time; each batch commits at the
     * tick the on-DIMM stream finishes it, fires @p notify, and chains
     * the next claim. When every frame is restored the module flips to
     * Operational and @p done fires. Fatal unless Protected.
     */
    HAMS_COLD_PATH void beginRestore(EventQueue& eq, Tick at, RestoreNotify notify,
                      RestoreDone done);

    /**
     * Priority restore: queue every unclaimed frame covering
     * [@p addr, @p addr + @p size) on the restore stream ahead of the
     * background cursor. Returns the tick by which the whole span is
     * restored (>= @p at; == @p at when already Operational). Frames
     * already claimed or committed keep their existing schedule.
     */
    HAMS_HOT_PATH Tick requestRestoreSpan(Addr addr, std::uint64_t size, Tick at);

    /** True when [@p addr, @p addr + @p size) is safe to access. */
    HAMS_HOT_PATH bool spanRestored(Addr addr, std::uint64_t size) const;

    std::uint64_t restoreFrames() const { return framesTotal; }
    std::uint64_t framesRestored() const { return framesDone; }
    std::uint64_t restoreCursorFrame() const { return claimCursor; }
    std::uint32_t restoreFrameBytes() const
    {
        return cfg.restoreFrameBytes;
    }
    /** Priority-restore requests that jumped the cursor. */
    std::uint64_t priorityRestores() const { return _priorityRestores; }
    /** Cost of restoring every frame (the RTO restore floor). */
    Tick fullRestoreTicks() const { return Tick(framesTotal) * tpf; }
    ///@}

    State state() const { return _state; }
    const char* stateName() const;
    bool contentsPreserved() const { return preserved; }
    std::uint64_t capacity() const { return cfg.capacity; }
    MemoryController& controller() { return ctrl; }
    const MemoryController& controller() const { return ctrl; }

  private:
    /** Claim and schedule the next background cursor batch. */
    HAMS_COLD_PATH void scheduleCursorBatch(Tick at);

    /** A restore span finished streaming: mark it and move on. */
    HAMS_COLD_PATH void commitFrames(std::uint32_t gen, std::uint64_t first,
                      std::uint64_t count, bool chain_cursor);

    void setRestored(std::uint64_t frame)
    {
        restoredBits[frame >> 6] |= 1ull << (frame & 63);
    }

    bool isRestored(std::uint64_t frame) const
    {
        return (restoredBits[frame >> 6] >> (frame & 63)) & 1;
    }

    NvdimmConfig cfg;
    MemoryController ctrl;
    std::unique_ptr<SparseMemory> store;
    State _state = State::Operational;
    bool preserved = false;

    /**
     * Restore-engine bookkeeping (mirrors the on-DIMM controller's
     * progress registers; pre-sized in the constructor so the restore
     * path never allocates). frameAvail holds maxTick for unclaimed
     * frames and the stream-commit tick once claimed; busyUntil is the
     * tail of the single on-DIMM flash stream all restore work shares.
     * restoreGen invalidates in-flight commit events across a power
     * failure (belt and braces on top of the queue reset).
     */
    std::vector<std::uint64_t> restoredBits;
    std::vector<Tick> frameAvail;
    std::uint64_t framesTotal = 0;
    std::uint64_t framesDone = 0;
    std::uint64_t claimCursor = 0;
    Tick busyUntil = 0;
    Tick tpf = 0; //!< stream time per restore frame
    std::uint32_t restoreGen = 0;
    std::uint64_t _priorityRestores = 0;
    EventQueue* restoreEq = nullptr;
    RestoreNotify notifyCb;
    RestoreDone doneCb;
};

} // namespace hams

#endif // HAMS_DRAM_NVDIMM_HH_

/**
 * @file
 * NVDIMM-N model: DRAM devices plus a supercapacitor-powered flash
 * backup path (JEDEC DDR4 NVDIMM-N design standard).
 *
 * During normal operation the module is indistinguishable from an
 * RDIMM. On power failure the on-DIMM controller isolates the DRAM via
 * multiplexers and streams its contents to the on-DIMM flash; on the
 * next boot it restores them. Both take tens of seconds for an 8 GB
 * module, which the model reproduces from the backup bandwidth.
 */

#ifndef HAMS_DRAM_NVDIMM_HH_
#define HAMS_DRAM_NVDIMM_HH_

#include <cstdint>
#include <memory>

#include "dram/memory_controller.hh"
#include "mem/sparse_memory.hh"
#include "sim/types.hh"

namespace hams {

/** Configuration for an NVDIMM-N module. */
struct NvdimmConfig
{
    std::uint64_t capacity = 8ull << 30;
    std::uint32_t speedGradeMts = 2133;
    /** On-DIMM backup flash streaming bandwidth (bytes/s). */
    double backupBandwidth = 400e6;
    /** Whether to allocate a functional backing store. */
    bool functionalData = true;
};

/**
 * A persistent DDR4 module. Exposes timing via the embedded controller
 * and data via an optional functional store; powerFail()/powerRestore()
 * drive the backup/restore state machine used by the persistence tests.
 */
class Nvdimm
{
  public:
    enum class State { Operational, BackingUp, Protected, Restoring };

    explicit Nvdimm(const NvdimmConfig& cfg);

    /** Timed access; only legal while Operational. */
    Tick access(Addr addr, std::uint32_t size, MemOp op, Tick at);

    /** @name Functional data plane (null if functionalData=false). */
    ///@{
    SparseMemory* data() { return store.get(); }
    const SparseMemory* data() const { return store.get(); }
    ///@}

    /**
     * Simulate loss of host power. The supercap keeps the module alive
     * while DRAM contents stream to the on-DIMM flash.
     * @return time the backup takes.
     */
    Tick powerFail();

    /**
     * Restore contents on the next boot.
     * @return time the restore takes.
     */
    Tick powerRestore();

    State state() const { return _state; }
    bool contentsPreserved() const { return preserved; }
    std::uint64_t capacity() const { return cfg.capacity; }
    MemoryController& controller() { return ctrl; }
    const MemoryController& controller() const { return ctrl; }

  private:
    NvdimmConfig cfg;
    MemoryController ctrl;
    std::unique_ptr<SparseMemory> store;
    State _state = State::Operational;
    bool preserved = false;
};

} // namespace hams

#endif // HAMS_DRAM_NVDIMM_HH_

#include "dram/nvdimm.hh"

#include "sim/logging.hh"

namespace hams {

Nvdimm::Nvdimm(const NvdimmConfig& cfg)
    : cfg(cfg),
      ctrl(Ddr4Timing::speedGrade(cfg.speedGradeMts), cfg.capacity)
{
    if (cfg.functionalData)
        store = std::make_unique<SparseMemory>(cfg.capacity);
}

Tick
Nvdimm::access(Addr addr, std::uint32_t size, MemOp op, Tick at)
{
    if (_state != State::Operational)
        fatal("NVDIMM accessed while not operational (state=",
              static_cast<int>(_state), ")");
    return ctrl.access(addr, size, op, at);
}

Tick
Nvdimm::powerFail()
{
    if (_state != State::Operational)
        fatal("powerFail on NVDIMM in non-operational state");
    _state = State::BackingUp;
    // The multiplexers isolate the DRAM; the controller streams the full
    // module to flash at the backup bandwidth.
    Tick backup_time =
        seconds(static_cast<double>(cfg.capacity) / cfg.backupBandwidth);
    // Contents are preserved once the stream finishes; the supercap is
    // sized for a full backup, so it always completes.
    preserved = true;
    _state = State::Protected;
    return backup_time;
}

Tick
Nvdimm::powerRestore()
{
    if (_state != State::Protected)
        fatal("powerRestore on NVDIMM that is not protected");
    _state = State::Restoring;
    Tick restore_time =
        seconds(static_cast<double>(cfg.capacity) / cfg.backupBandwidth);
    ctrl.device().reset();
    _state = State::Operational;
    return restore_time;
}

} // namespace hams

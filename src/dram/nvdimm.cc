#include "dram/nvdimm.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hams {

Nvdimm::Nvdimm(const NvdimmConfig& cfg)
    : cfg(cfg),
      ctrl(Ddr4Timing::speedGrade(cfg.speedGradeMts), cfg.capacity)
{
    if (cfg.functionalData)
        store = std::make_unique<SparseMemory>(cfg.capacity);
    if (cfg.restoreFrameBytes == 0)
        fatal("NVDIMM restore frame size must be non-zero");

    framesTotal = (cfg.capacity + cfg.restoreFrameBytes - 1) /
                  cfg.restoreFrameBytes;
    tpf = seconds(static_cast<double>(cfg.restoreFrameBytes) /
                  cfg.backupBandwidth);
    restoredBits.assign((framesTotal + 63) / 64, 0);
    frameAvail.assign(framesTotal, maxTick);
}

const char*
Nvdimm::stateName() const
{
    switch (_state) {
      case State::Operational:
        return "Operational";
      case State::BackingUp:
        return "BackingUp";
      case State::Protected:
        return "Protected";
      case State::Restoring:
        return "Restoring";
    }
    return "unknown";
}

Tick
Nvdimm::access(Addr addr, std::uint32_t size, MemOp op, Tick at)
{
    if (_state == State::Restoring) {
        // Mid-restore service is legal only on restored frames: the
        // caller's degraded-mode admission must have stalled anything
        // else, because the DRAM still holds pre-backup garbage there.
        if (!spanRestored(addr, size ? size : 1))
            fatal("NVDIMM access to unrestored span [", addr, ", ",
                  addr + size, ") during restore (restored ", framesDone,
                  "/", framesTotal, " frames, cursor at ", claimCursor,
                  ")");
    } else if (_state != State::Operational) {
        fatal("NVDIMM accessed while not operational (state=",
              stateName(), ")");
    }
    return ctrl.access(addr, size, op, at);
}

Tick
Nvdimm::powerFail()
{
    if (_state == State::Restoring) {
        // Second failure mid-restore. Only the restored prefix can
        // have absorbed new writes; the unrestored remainder is still
        // intact in the on-DIMM flash, so the re-backup streams just
        // the restored frames.
        ++restoreGen; // stale commit events must not fire post-cut
        _state = State::BackingUp;
        Tick backup_time = Tick(framesDone) * tpf;
        notifyCb = nullptr;
        doneCb = nullptr;
        restoreEq = nullptr;
        preserved = true;
        _state = State::Protected;
        return backup_time;
    }
    if (_state != State::Operational)
        fatal("powerFail on NVDIMM in non-operational state (state=",
              stateName(), ")");
    _state = State::BackingUp;
    // The multiplexers isolate the DRAM; the controller streams the full
    // module to flash at the backup bandwidth.
    Tick backup_time =
        seconds(static_cast<double>(cfg.capacity) / cfg.backupBandwidth);
    // Contents are preserved once the stream finishes; the supercap is
    // sized for a full backup, so it always completes.
    preserved = true;
    _state = State::Protected;
    return backup_time;
}

Tick
Nvdimm::powerRestore()
{
    if (_state != State::Protected)
        fatal("powerRestore on NVDIMM that is not protected (state=",
              stateName(), _state == State::Operational
                               ? "; double restore — the module already "
                                 "completed a restore"
                               : "",
              ")");
    ++restoreGen;
    _state = State::Restoring;
    // Stop-the-world restore: every frame streams back before service
    // resumes, so the whole bitmap is set at once.
    std::fill(restoredBits.begin(), restoredBits.end(), ~0ull);
    std::fill(frameAvail.begin(), frameAvail.end(), Tick(0));
    framesDone = framesTotal;
    claimCursor = framesTotal;
    Tick restore_time = fullRestoreTicks();
    ctrl.device().reset();
    _state = State::Operational;
    return restore_time;
}

void
Nvdimm::beginRestore(EventQueue& eq, Tick at, RestoreNotify notify,
                     RestoreDone done)
{
    if (_state != State::Protected)
        fatal("beginRestore on NVDIMM that is not protected (state=",
              stateName(), ", restored ", framesDone, "/", framesTotal,
              " frames)");
    ++restoreGen;
    _state = State::Restoring;
    restoreEq = &eq;
    notifyCb = std::move(notify);
    doneCb = std::move(done);
    std::fill(restoredBits.begin(), restoredBits.end(), 0);
    std::fill(frameAvail.begin(), frameAvail.end(), maxTick);
    framesDone = 0;
    claimCursor = 0;
    busyUntil = at;
    ctrl.device().reset();
    scheduleCursorBatch(at);
}

void
Nvdimm::scheduleCursorBatch(Tick at)
{
    // Skip frames a priority restore already claimed, then claim the
    // next contiguous run. One batch is in flight at a time; its commit
    // chains the next claim, so the stream never idles mid-restore.
    while (claimCursor < framesTotal && frameAvail[claimCursor] != maxTick)
        ++claimCursor;
    if (claimCursor >= framesTotal)
        return; // everything claimed; outstanding commits finish the job

    std::uint64_t first = claimCursor;
    std::uint64_t n = 0;
    while (n < cfg.restoreBatchFrames && claimCursor < framesTotal &&
           frameAvail[claimCursor] == maxTick) {
        ++n;
        ++claimCursor;
    }
    Tick start = std::max(at, busyUntil);
    Tick end = start + Tick(n) * tpf;
    busyUntil = end;
    for (std::uint64_t f = first; f < first + n; ++f)
        frameAvail[f] = end;
    restoreEq->scheduleAt(end, [this, gen = restoreGen, first, n]() {
        commitFrames(gen, first, n, /*chain_cursor=*/true);
    });
}

void
Nvdimm::commitFrames(std::uint32_t gen, std::uint64_t first,
                     std::uint64_t count, bool chain_cursor)
{
    if (gen != restoreGen || _state != State::Restoring)
        return; // a power failure invalidated this restore
    Tick when = restoreEq->now();
    for (std::uint64_t f = first; f < first + count; ++f)
        setRestored(f);
    framesDone += count;
    if (notifyCb)
        notifyCb(first, count, when);
    if (framesDone == framesTotal) {
        _state = State::Operational;
        RestoreDone done = std::move(doneCb);
        notifyCb = nullptr;
        doneCb = nullptr;
        if (done)
            done(when);
        return;
    }
    if (chain_cursor)
        scheduleCursorBatch(when);
}

Tick
Nvdimm::requestRestoreSpan(Addr addr, std::uint64_t size, Tick at)
{
    if (_state == State::Operational)
        return at;
    if (_state != State::Restoring)
        fatal("priority restore on NVDIMM that is not restoring (state=",
              stateName(), ")");
    if (addr + (size ? size : 1) > cfg.capacity)
        fatal("priority restore span [", addr, ", ", addr + size,
              ") beyond NVDIMM capacity ", cfg.capacity);

    std::uint64_t f0 = addr / cfg.restoreFrameBytes;
    std::uint64_t f1 = (addr + (size ? size : 1) - 1) / cfg.restoreFrameBytes;
    Tick ready = at;
    for (std::uint64_t f = f0; f <= f1; ++f) {
        if (frameAvail[f] == maxTick) {
            Tick start = std::max(at, busyUntil);
            Tick end = start + tpf;
            busyUntil = end;
            frameAvail[f] = end;
            ++_priorityRestores;
            restoreEq->scheduleAt(end, [this, gen = restoreGen, f]() {
                commitFrames(gen, f, 1, /*chain_cursor=*/false);
            });
            ready = std::max(ready, end);
        } else {
            ready = std::max(ready, frameAvail[f]);
        }
    }
    return ready;
}

bool
Nvdimm::spanRestored(Addr addr, std::uint64_t size) const
{
    if (_state != State::Restoring)
        return _state == State::Operational;
    std::uint64_t f0 = addr / cfg.restoreFrameBytes;
    std::uint64_t f1 = (addr + (size ? size : 1) - 1) / cfg.restoreFrameBytes;
    for (std::uint64_t f = f0; f <= f1; ++f)
        if (!isRestored(f))
            return false;
    return true;
}

} // namespace hams

#include "dram/memory_controller.hh"

namespace hams {

MemoryController::MemoryController(const Ddr4Timing& timing,
                                   std::uint64_t capacity,
                                   const MemCtrlConfig& cfg)
    : cfg(cfg), dram(timing, capacity)
{
}

Tick
MemoryController::access(Addr addr, std::uint32_t size, MemOp op, Tick at)
{
    Tick issued = at + cfg.frontendLatency + cfg.rdimmLatency;
    return dram.access(addr, size, op, issued).ready;
}

Tick
MemoryController::estimate(std::uint32_t size) const
{
    const Ddr4Timing& t = dram.timing();
    std::uint64_t bursts =
        (size + Ddr4Timing::burstBytes - 1) / Ddr4Timing::burstBytes;
    return cfg.frontendLatency + cfg.rdimmLatency + t.tRCD + t.tCL +
           bursts * t.tBURST;
}

} // namespace hams

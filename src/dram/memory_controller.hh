/**
 * @file
 * Channel-level memory controller.
 *
 * Adds the controller pipeline (queueing, command scheduling) in front of
 * a DramDevice and exposes a single access() entry point used by the MCH,
 * the HAMS controller and the NVMe-side DMA engines.
 */

#ifndef HAMS_DRAM_MEMORY_CONTROLLER_HH_
#define HAMS_DRAM_MEMORY_CONTROLLER_HH_

#include <cstdint>

#include "dram/dram_device.hh"
#include "mem/request.hh"
#include "sim/annotations.hh"
#include "sim/types.hh"

namespace hams {

/** Configuration of the controller front end. */
struct MemCtrlConfig
{
    /** Fixed pipeline latency through the controller logic. */
    Tick frontendLatency = nanoseconds(10);
    /** Extra latency for registered DIMMs (RDIMM buffer). */
    Tick rdimmLatency = nanoseconds(1);
};

/**
 * A simple FR-FCFS-lite controller: requests pay a fixed front-end
 * pipeline cost and then contend for banks/bus inside the device model.
 */
class MemoryController
{
  public:
    MemoryController(const Ddr4Timing& timing, std::uint64_t capacity,
                     const MemCtrlConfig& cfg = {});

    /**
     * Issue an access at tick @p at.
     * @return the tick at which the last data beat arrives.
     */
    HAMS_HOT_PATH Tick access(Addr addr, std::uint32_t size, MemOp op, Tick at);

    /** Latency an access would see, without mutating state (estimate). */
    HAMS_HOT_PATH Tick estimate(std::uint32_t size) const;

    DramDevice& device() { return dram; }
    const DramDevice& device() const { return dram; }

    std::uint64_t capacity() const { return dram.capacity(); }

  private:
    MemCtrlConfig cfg;
    DramDevice dram;
};

} // namespace hams

#endif // HAMS_DRAM_MEMORY_CONTROLLER_HH_

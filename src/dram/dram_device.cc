#include "dram/dram_device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hams {

DramDevice::DramDevice(const Ddr4Timing& timing, std::uint64_t capacity)
    : _timing(timing), _capacity(capacity)
{
    if (capacity == 0)
        fatal("DRAM capacity must be non-zero");
    banks.resize(_timing.ranks * _timing.banks);

    if (isPow2(_timing.rowBufferBytes) && isPow2(banks.size())) {
        rowShift = log2u64(_timing.rowBufferBytes);
        bankShift = log2u64(banks.size());
        bankMask = banks.size() - 1;
    }
}

void
DramDevice::decode(Addr addr, std::uint32_t& bank, std::uint64_t& row) const
{
    // Row-interleaved mapping: [row | bank | column]. Consecutive rows of
    // one bank are rowBufferBytes apart; banks interleave at row-buffer
    // granularity so bulk transfers rotate across banks.
    if (rowShift) {
        std::uint64_t frame = addr >> rowShift;
        bank = static_cast<std::uint32_t>(frame & bankMask);
        row = frame >> bankShift;
        return;
    }
    std::uint64_t frame = addr / _timing.rowBufferBytes;
    bank = static_cast<std::uint32_t>(frame % banks.size());
    row = frame / banks.size();
}

Tick
DramDevice::burst(Addr addr, MemOp op, Tick at)
{
    std::uint32_t bank_idx;
    std::uint64_t row;
    decode(addr, bank_idx, row);
    Bank& bank = banks[bank_idx];

    Tick start = std::max(at, bank.freeAt);
    Tick array_latency;
    if (bank.openRow == static_cast<std::int64_t>(row)) {
        array_latency = _timing.tCL;
        lastWasRowHit = true;
    } else {
        // Precharge the old row (if any) then activate the new one.
        array_latency = (bank.openRow >= 0 ? _timing.tRP : 0) +
                        _timing.tRCD + _timing.tCL;
        bank.openRow = static_cast<std::int64_t>(row);
        ++_activity.activates;
        lastWasRowHit = false;
    }

    // The data burst itself must also win the shared bus.
    Tick data_start = std::max(start + array_latency, busBusyUntil);
    Tick done = data_start + _timing.tBURST;
    busBusyUntil = done;
    _activity.busyTime += _timing.tBURST;

    // Writes hold the bank through write recovery.
    bank.freeAt = done + (op == MemOp::Write ? _timing.tWR : 0);

    if (op == MemOp::Read)
        ++_activity.reads;
    else
        ++_activity.writes;
    return done;
}

DramAccessResult
DramDevice::access(Addr addr, std::uint32_t size, MemOp op, Tick at)
{
    if (size == 0)
        fatal("zero-size DRAM access");
    if (addr + size > _capacity)
        fatal("DRAM access [", addr, ", ", addr + size, ") exceeds capacity ",
              _capacity);

    // Align to burst boundaries; a partial burst still moves a burst.
    Addr first = addr & ~Addr(Ddr4Timing::burstBytes - 1);
    Addr last = (addr + size - 1) & ~Addr(Ddr4Timing::burstBytes - 1);
    std::uint64_t n_bursts = (last - first) / Ddr4Timing::burstBytes + 1;

    if (n_bursts > bulkThreshold)
        return bulkAccess(first, n_bursts, op, at);

    DramAccessResult res;
    bool first_burst = true;
    for (Addr a = first;; a += Ddr4Timing::burstBytes) {
        Tick done = burst(a, op, at);
        if (first_burst) {
            res.rowHit = lastWasRowHit;
            first_burst = false;
        }
        res.ready = done;
        if (a == last)
            break;
    }
    return res;
}

DramAccessResult
DramDevice::bulkAccess(Addr first, std::uint64_t n_bursts, MemOp op, Tick at)
{
    // O(1) model of a long pipelined transfer: the data bus is the
    // bottleneck; bank activates on successive rows overlap with earlier
    // bursts because the row-interleaved mapping rotates across banks.
    Tick start = std::max(at, busBusyUntil);
    Tick lead_in = _timing.tRCD + _timing.tCL;
    Tick done = start + lead_in + n_bursts * _timing.tBURST;
    busBusyUntil = done;

    std::uint64_t bytes = n_bursts * Ddr4Timing::burstBytes;
    std::uint64_t rows = (bytes + _timing.rowBufferBytes - 1) /
                         _timing.rowBufferBytes;
    _activity.activates += rows;
    _activity.busyTime += n_bursts * _timing.tBURST;
    if (op == MemOp::Read)
        _activity.reads += n_bursts;
    else
        _activity.writes += n_bursts;

    // Invalidate affected banks' open-row knowledge conservatively by
    // closing everything the transfer rotated through.
    std::uint64_t frames = rows;
    std::uint32_t bank_idx;
    std::uint64_t row;
    decode(first, bank_idx, row);
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(frames,
                                                          banks.size());
         ++i) {
        Bank& b = banks[(bank_idx + i) % banks.size()];
        b.openRow = -1;
        b.freeAt = std::max(b.freeAt, done);
    }

    return DramAccessResult{done, false};
}

Tick
DramDevice::occupyBus(Tick at, Tick duration)
{
    Tick start = std::max(at, busBusyUntil);
    busBusyUntil = start + duration;
    _activity.busyTime += duration;
    return busBusyUntil;
}

void
DramDevice::reset()
{
    for (auto& b : banks) {
        b.openRow = -1;
        b.freeAt = 0;
    }
    busBusyUntil = 0;
}

} // namespace hams

/**
 * @file
 * Bank-accurate DDR4 device timing model.
 *
 * Uses resource reservation: each bank tracks its open row and the tick
 * at which it becomes free; the shared data bus tracks its own busy-until
 * time. An access computes its completion tick analytically, which lets
 * the DES schedule exactly one completion event per request instead of
 * one per DRAM command.
 */

#ifndef HAMS_DRAM_DRAM_DEVICE_HH_
#define HAMS_DRAM_DRAM_DEVICE_HH_

#include <cstdint>
#include <vector>

#include "dram/ddr4_timing.hh"
#include "mem/request.hh"
#include "sim/types.hh"

namespace hams {

/** Operation counters consumed by the DRAM power model. */
struct DramActivity
{
    std::uint64_t activates = 0;
    std::uint64_t reads = 0;       //!< 64 B bursts read
    std::uint64_t writes = 0;      //!< 64 B bursts written
    Tick busyTime = 0;             //!< data bus occupancy
};

/** Result of one device access. */
struct DramAccessResult
{
    Tick ready = 0;     //!< tick at which the data transfer completes
    bool rowHit = false;
};

/**
 * One rank-group of DDR4 devices behind a single data bus.
 *
 * Capacity is split across ranks x banks; each bank keeps an open row
 * (page) and services row hits at tCL and misses at tRP+tRCD+tCL.
 */
class DramDevice
{
  public:
    DramDevice(const Ddr4Timing& timing, std::uint64_t capacity);

    /**
     * Access @p size bytes starting at @p addr beginning no earlier than
     * @p at. Multi-burst transfers pipeline on the data bus and may span
     * rows (each new row adds a precharge+activate).
     */
    DramAccessResult access(Addr addr, std::uint32_t size, MemOp op, Tick at);

    /** Earliest tick at which the data bus is free. */
    Tick busFreeAt() const { return busBusyUntil; }

    /**
     * Reserve the data bus for @p duration starting no earlier than
     * @p at, without touching any bank (used by the advanced-HAMS
     * register interface, whose bursts address the ULL-Flash registers
     * that share the channel rather than a DRAM row).
     * @return tick at which the reservation ends.
     */
    Tick occupyBus(Tick at, Tick duration);

    std::uint64_t capacity() const { return _capacity; }
    const Ddr4Timing& timing() const { return _timing; }
    const DramActivity& activity() const { return _activity; }

    /** Close all rows and clear busy state (used on power restore). */
    void reset();

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        Tick freeAt = 0;
    };

    /** Map an address to (bank index, row number). */
    void decode(Addr addr, std::uint32_t& bank, std::uint64_t& row) const;

    /**
     * Shift/mask decode for power-of-two row buffers and bank counts
     * (every stock speed grade): decode() runs per 64 B burst, so its
     * three divisions are hot. Zero rowShift means "fall back to div".
     */
    std::uint32_t rowShift = 0;
    std::uint32_t bankShift = 0;
    std::uint64_t bankMask = 0;

    /** Time one 64 B burst, updating bank and bus state. */
    Tick burst(Addr addr, MemOp op, Tick at);

    /** O(1) pipelined model for long transfers (> bulkThreshold bursts). */
    DramAccessResult bulkAccess(Addr first, std::uint64_t n_bursts, MemOp op,
                                Tick at);

    /** Transfers longer than this many bursts take the bulk fast path. */
    static constexpr std::uint64_t bulkThreshold = 32;

    Ddr4Timing _timing;
    std::uint64_t _capacity;
    std::vector<Bank> banks;
    Tick busBusyUntil = 0;
    DramActivity _activity;
    bool lastWasRowHit = false;
};

} // namespace hams

#endif // HAMS_DRAM_DRAM_DEVICE_HH_

/**
 * @file
 * The HAMS cache logic: the address manager that turns an NVDIMM plus a
 * ULL-Flash into one large Memory-over-Storage address space (paper
 * SSIV/SSV).
 *
 * Responsibilities:
 *  - serve MMU requests against the direct-mapped NVDIMM cache (the tag
 *    travels with the data line, so a probe is one NVDIMM access);
 *  - on a miss, compose the eviction (dirty victim) and fill commands
 *    and hand them to the hardware NVMe engine;
 *  - hazard control: per-frame busy bit + wait queue, PRP-pool page
 *    cloning so in-flight DMA never observes a torn frame, and
 *    redundant-eviction suppression (paper Figs. 13/14);
 *  - persist mode (FUA on every I/O, single outstanding command) versus
 *    extend mode (full NVMe parallelism + journal-tag recovery);
 *  - power-failure recovery orchestration (paper Fig. 15).
 *
 * Hot-path discipline: the per-access machinery is allocation-free in
 * steady state. Each in-flight access rides a pooled Op context
 * (event callbacks capture just {this, op}); parked requests live in
 * per-frame intrusive lists drawn from a waiter arena; and the PRP
 * clone staging copy reuses pooled 128 KiB buffers.
 */

#ifndef HAMS_CORE_HAMS_CONTROLLER_HH_
#define HAMS_CORE_HAMS_CONTROLLER_HH_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/hotness_tracker.hh"
#include "core/mos_tag_array.hh"
#include "sim/annotations.hh"
#include "core/nvme_engine.hh"
#include "core/pinned_region.hh"
#include "dram/nvdimm.hh"
#include "mem/request.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"

namespace hams {

/** Operating mode (paper SSVI-A platform list). */
enum class HamsMode : std::uint8_t {
    Persist, //!< FUA per I/O, at most one outstanding command
    Extend,  //!< parallel NVMe queues + journal-tag persistency control
};

/** How the controller protects the frame under DMA. */
enum class HazardPolicy : std::uint8_t {
    PrpClone,           //!< clone the page into the PRP pool (the paper)
    SerializeEvictFill, //!< no clone; fill waits for the eviction
    Unprotected,        //!< no clone, no ordering: demonstrates the hazard
};

/** Controller configuration. */
struct HamsControllerConfig
{
    std::uint32_t pageBytes = 128 * 1024; //!< MoS page (Table II)
    HamsMode mode = HamsMode::Extend;
    HazardPolicy hazard = HazardPolicy::PrpClone;
    /** Cache-logic latency: decompose + comparator + mux. */
    Tick logicLatency = nanoseconds(15);
    /**
     * Recovery cost charged per replayed journal entry (journal slot
     * readout + command re-composition + tag-array fixup), on top of
     * the replayed I/O itself. Makes RTO scale with dirty-state size.
     */
    Tick replayEntryCost = microseconds(2);
    /**
     * True when the platform carries real bytes end to end (functional
     * SSD). Timing-only runs skip the PRP-clone byte copy: the NVDIMM
     * store always exists for the pinned region, but with a
     * non-functional SSD nothing ever reads the cloned frame, so the
     * 2x page-size memcpy per dirty miss would be pure host-side
     * overhead. The clone's *timing* is charged either way.
     */
    bool functionalData = true;
};

/** Aggregate controller statistics. */
struct HamsStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t cleanVictims = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t prpClones = 0;
    std::uint64_t waitQueued = 0;        //!< accesses parked on busy bit
    std::uint64_t redundantEvictionsAvoided = 0;
    std::uint64_t persistGateWaits = 0;  //!< misses serialised by persist
    /**
     * @name Contention depth (SMP runs). How hard cores pile on shared
     * structures: the deepest wait list any single frame ever grew
     * (concurrent accesses parked on one busy frame) and the deepest
     * the persist-mode gate queue ever got. Both stay 0/1-ish for a
     * single in-order core and grow with core count under contention.
     */
    ///@{
    std::uint64_t waiterPeakDepth = 0;
    std::uint64_t gateQueuePeakDepth = 0;
    ///@}
    std::uint64_t replayedCommands = 0;
    /**
     * @name Degraded-service mode (online recovery). Accesses admitted
     * while recovery is in flight; the subset that touched a frame the
     * restore cursor had not reached (parked until its priority restore
     * lands); and misses held until journal replay drained the SQ.
     */
    ///@{
    std::uint64_t degradedAccesses = 0;
    std::uint64_t restoreStalls = 0;
    std::uint64_t recoveryGateWaits = 0;
    ///@}
    LatencyBreakdown memoryDelay;        //!< summed across accesses
};

/**
 * The HAMS controller. Asynchronous: completion callbacks fire as DES
 * events. Byte payloads are optional; when supplied they flow through
 * the NVDIMM's functional store so integrity is checkable end to end.
 */
class HamsController
{
  public:
    using AccessCb = hams::AccessCb;

    HamsController(EventQueue& eq, Nvdimm& nvdimm, HamsNvmeEngine& engine,
                   PinnedRegion& pinned, std::uint64_t mos_capacity,
                   const HamsControllerConfig& cfg);

    /** Total byte-addressable MoS capacity exposed to the MMU. */
    std::uint64_t mosCapacity() const { return _mosCapacity; }

    std::uint32_t pageBytes() const { return cfg.pageBytes; }
    const MosTagArray& tagArray() const { return tags; }
    const HamsStats& stats() const { return _stats; }
    const HamsControllerConfig& config() const { return cfg; }

    /**
     * One MMU request. @p wdata (writes) and @p rdata (reads) may be
     * null for timing-only runs; @p rdata is filled at completion time.
     */
    HAMS_HOT_PATH void access(const MemAccess& acc, const std::uint8_t* wdata,
                std::uint8_t* rdata, Tick at, AccessCb cb);

    /** Timing-only convenience overload. */
    HAMS_HOT_PATH void
    access(const MemAccess& acc, Tick at, AccessCb cb)
    {
        access(acc, nullptr, nullptr, at, std::move(cb));
    }

    /**
     * Immediate-completion fast path (contract in baselines/
     * platform.hh): completes timing-only extend-mode hits on an idle
     * frame — valid, tag match, no busy bit, hence no parked waiters —
     * inline, with side effects and stats identical to access().
     * Persist-mode accesses and anything that needs I/O return false
     * untouched.
     *
     * Background GC in the ULL-Flash needs no special casing here: a
     * hit never touches the SSD, and while a GC step event is pending
     * the caller's eventQueue().empty() gate declines the inline path
     * anyway, so misses — whose latency now sees GC interference
     * through the FIL's channel/die accounting — always take the
     * event path.
     */
    HAMS_HOT_PATH bool tryAccess(const MemAccess& acc, Tick at, InlineCompletion& out);

    /**
     * Feed every dispatched access into a hotness tracker (null
     * detaches). The touch happens once per dispatch — re-injected
     * waiters count again, exactly like `HamsStats::accesses` — and
     * identically on the access() and tryAccess() paths, so enabling
     * the inline fast path cannot change tracker state.
     */
    void attachHotness(HotnessTracker* h) { hotness = h; }

    /** Drop volatile state (wait queue, persist gate) on power failure. */
    HAMS_COLD_PATH void onPowerFail();

    /**
     * @name Online recovery (paper Fig. 15, event-driven).
     *
     * beginRecovery() starts the journal scan + per-entry replay as
     * scheduled events and flips the controller into degraded-service
     * mode; @p done fires once replay has drained AND the NVDIMM
     * restore has completed. The caller must have put the NVDIMM into
     * its incremental restore (Nvdimm::beginRestore) first and wire
     * onFramesRestored()/onRestoreComplete() to its callbacks.
     *
     * Degraded-mode admission (enforced in access()):
     *  - hits on restored frames complete at normal latency;
     *  - an access to an unrestored frame is parked on the frame's
     *    pooled wait list and a priority restore is queued — it is
     *    NEVER served stale;
     *  - misses are additionally held on the recovery gate until every
     *    journalled entry has been re-pushed (the replay rebuilds the
     *    SQ in place, so foreground submits must not interleave).
     */
    ///@{
    HAMS_COLD_PATH void beginRecovery(Tick at, std::function<void(Tick)> done);

    /** NVDIMM restore-cursor progress: wake stalls the span unblocks. */
    HAMS_COLD_PATH void onFramesRestored(std::uint64_t first_frame,
                          std::uint64_t frame_count, Tick at);

    /** NVDIMM restore finished; recovery completes once replay drains. */
    HAMS_COLD_PATH void onRestoreComplete(Tick at);

    bool recovering() const { return _recovering; }

    /** True while replayed entries are issued but not all completed. */
    bool replayInFlight() const
    {
        return _recovering && rec.scanned && rec.total > 0 &&
               rec.issued > 0 && rec.completed < rec.total;
    }

    std::size_t recoveryReplayTotal() const { return rec.total; }
    std::size_t recoveryReplayCompleted() const { return rec.completed; }
    ///@}

    /** @name Pool introspection (tests/bench). */
    ///@{
    std::size_t stagingFramesAllocated() const
    {
        return staging.totalFrames();
    }
    std::size_t opContextsAllocated() const { return opPool.totalObjects(); }
    ///@}

  private:
    static constexpr std::uint32_t nil = ~std::uint32_t(0);

    /**
     * Pooled context of one in-flight access. All per-access state
     * lives here so event and completion callbacks capture only
     * {this, op} — 16 bytes, well inside the inline-callback budget.
     */
    struct Op
    {
        MemAccess acc;
        const std::uint8_t* wdata;
        std::uint8_t* rdata;
        std::uint64_t idx;    //!< cache frame (computed once in access())
        std::uint64_t newTag; //!< tag after the fill lands
        Tick reqAt;           //!< miss submit time (device-held check)
        Addr line;            //!< resolved NVDIMM line address
        Tick done;            //!< completion tick
        LatencyBreakdown bd;
        AccessCb cb;
    };

    /** One parked request in a per-frame intrusive wait list. */
    struct Waiter
    {
        MemAccess acc;
        const std::uint8_t* wdata;
        std::uint8_t* rdata;
        AccessCb cb;
        std::uint32_t next;
    };

    /** Persist-gate / eviction-chain thunk (inline capture). */
    using GateThunk = InlineFunction<void(Tick)>;

    /** NVDIMM byte address of cache frame @p idx. */
    HAMS_HOT_PATH Addr frameAddr(std::uint64_t idx) const
    {
        return Addr(idx) * cfg.pageBytes;
    }

    /** First LBA of the MoS page containing @p mos_addr. */
    HAMS_HOT_PATH std::uint64_t slbaOf(Addr mos_page_addr) const
    {
        return mos_page_addr / nvmeBlockSize;
    }

    HAMS_HOT_PATH std::uint32_t blocksPerPage() const
    {
        return cfg.pageBytes / nvmeBlockSize;
    }

    /** Build a pooled Op for a new request. */
    HAMS_HOT_PATH Op* makeOp(const MemAccess& acc, const std::uint8_t* wdata,
               std::uint8_t* rdata, std::uint64_t idx, AccessCb cb);

    HAMS_HOT_PATH void handleHit(Op* op, Tick at);
    HAMS_HOT_PATH void handleMiss(Op* op, Tick at);

    /** A recovery-gated miss re-decides hit/park/miss at drain time. */
    HAMS_COLD_PATH void retryMiss(Op* op, Tick at);

    /** Final NVDIMM data access of a request, plus functional bytes. */
    HAMS_HOT_PATH void serveFromFrame(Op* op, Tick at);

    /** Issue fill (and possibly eviction) for a missing page. */
    HAMS_HOT_PATH void startMissIo(Op* op, Tick at);

    /** Submit the demand fill of @p op. */
    HAMS_HOT_PATH void submitFill(Op* op, Tick t);

    /** Fill landed: install the tag, serve the line, wake waiters. */
    HAMS_HOT_PATH void onFillDone(Op* op, const NvmeCmdTrace& trace, Tick when);

    /** Persist-mode gate: run thunks one I/O at a time. */
    HAMS_HOT_PATH void gateSubmit(Tick at, GateThunk thunk);
    HAMS_HOT_PATH void gateRelease(Tick at);

    /** Park a request on frame @p idx's wait list. */
    HAMS_HOT_PATH void parkWaiter(const MemAccess& acc, const std::uint8_t* wdata,
                    std::uint8_t* rdata, std::uint64_t idx, AccessCb cb);

    /** Wake accesses parked on @p idx. */
    HAMS_HOT_PATH void drainWaiters(std::uint64_t idx, Tick at);

    /** @name Recovery replay chain (one entry at a time). */
    ///@{
    /** Journal scan + SQ compaction once the metadata span is back. */
    HAMS_COLD_PATH void startReplay(Tick at);

    /** Charge replayEntryCost and wait out the entry's target frame. */
    HAMS_COLD_PATH void scheduleNextReplayEntry(Tick at);

    HAMS_COLD_PATH void issueReplayEntry(Tick at);
    HAMS_COLD_PATH void onReplayEntryDone(const NvmeCommand& cmd, Tick when);
    HAMS_COLD_PATH void finishReplay(Tick at);

    /** Fire the recovery-done callback once replay AND restore ended. */
    HAMS_COLD_PATH void maybeFinishRecovery(Tick at);

    /** Misses must hold until the replay re-pushes rebuilt the SQ. */
    bool replayHolding() const
    {
        return _recovering && (!rec.scanned || rec.completed < rec.total);
    }
    ///@}

    EventQueue& eq;
    Nvdimm& nvdimm;
    HamsNvmeEngine& engine;
    PinnedRegion& pinned;
    HamsControllerConfig cfg;
    std::uint64_t _mosCapacity;
    MosTagArray tags;
    HamsStats _stats;
    /** Optional per-access hotness monitor (attachHotness()). */
    HotnessTracker* hotness = nullptr;

    ObjectPool<Op> opPool;
    FrameBufferPool staging; //!< PRP-clone staging copies (pageBytes each)

    /** Waiter arena + per-frame intrusive list heads/tails. */
    std::vector<Waiter> waiterPool;
    std::uint32_t waiterFreeHead = nil;
    std::vector<std::uint32_t> waitHead;
    std::vector<std::uint32_t> waitTail;
    std::vector<std::uint32_t> waitDepth; //!< current waiters per frame

    /** Persist-mode serialisation. */
    bool gateBusy = false;
    std::deque<GateThunk> gateQueue;

    /**
     * Online-recovery state. rec.entries is the journal scan snapshot
     * (also the compaction order: entry i occupies SQ slot i until its
     * re-push supersedes it); issued/completed drive the serial
     * per-entry replay chain. recoveryGate holds misses that arrived
     * while the replay still owned the SQ.
     */
    struct RecoveryState
    {
        std::vector<NvmeCommand> entries;
        std::size_t issued = 0;
        std::size_t completed = 0;
        std::size_t total = 0;
        bool scanned = false;
        std::function<void(Tick)> done;
    };
    RecoveryState rec;
    bool _recovering = false;
    bool restoreDone = false;
    std::deque<GateThunk> recoveryGate;
};

} // namespace hams

#endif // HAMS_CORE_HAMS_CONTROLLER_HH_

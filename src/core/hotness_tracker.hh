/**
 * @file
 * Decaying access-frequency/recency monitor and the tiering knobs it
 * feeds — the CHMU-style hotness signal behind hot-frame pinning,
 * background promotion/demotion and hot/cold-aware FTL placement.
 *
 * ## Decay/epoch contract
 *
 * The tracker keeps one saturating 16-bit counter per frame in a table
 * pre-sized at construction (no growth, ever). Time is measured in
 * *epochs*: a global epoch counter advances once every
 * TieringConfig::epochAccesses touches. Counters are not swept when an
 * epoch turns — that would cost O(frames) on the hot path — instead
 * each entry carries the epoch stamp of its last touch and decays
 * *lazily*: a reader right-shifts the stored count by the number of
 * epochs elapsed since the stamp (a halving per epoch, clamped so
 * shifts >= 16 read as zero). touch() applies the same decay, then
 * saturating-increments and restamps. The observable value of a frame
 * is therefore always `count >> (epoch - stamp)` — frequency with
 * exponential recency decay — and two runs issuing the same touch
 * sequence read bit-identical values at every point: the tracker is
 * pure integer state driven only by the access stream.
 *
 * A frame is *hot* when its decayed count reaches
 * TieringConfig::hotThreshold. With the default epochAccesses = 4096
 * and hotThreshold = 4, a frame needs ~4 touches within the last
 * couple of epochs to qualify — a working-set membership test, not a
 * lifetime popularity contest.
 *
 * Hot-path discipline: touch()/isHotAddr() are O(1), allocation-free,
 * probe no hash and take no locks; the table is plain contiguous
 * memory. Power failure clears the tracker (clear()) — hotness is
 * volatile advice, never durable state, so losing it affects
 * performance only, never correctness.
 */

#ifndef HAMS_CORE_HOTNESS_TRACKER_HH_
#define HAMS_CORE_HOTNESS_TRACKER_HH_

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/annotations.hh"
#include "sim/types.hh"

namespace hams {

/**
 * Tiering knobs, documented FtlConfig-style: every consumer has its own
 * enable so the signal and each policy acting on it can be toggled
 * independently. All defaults OFF — a default-constructed TieringConfig
 * is inert and the simulated outputs are bit-identical to a build
 * without the subsystem.
 */
struct TieringConfig
{
    /** Master switch: allocate the tracker and feed it every access.
     *  Off, nothing below applies and no tracker exists. On with every
     *  consumer knob off, the tracker observes but never acts — the
     *  differential tests pin that this is output-inert. */
    bool enabled = false;

    /** Tracking granularity in bytes (one counter per frame). Keep it
     *  at the 4 KiB NVMe block so cache keys, FTL LPN groups and
     *  tracker frames coincide. */
    std::uint32_t frameBytes = 4096;

    /** Touches per epoch: the decay clock. Smaller = faster forgetting
     *  (recency-biased), larger = frequency-biased. */
    std::uint32_t epochAccesses = 4096;

    /** Decayed count at/above which a frame counts as hot. */
    std::uint16_t hotThreshold = 4;

    /** Consumer 1: cold-first eviction / hot-frame pinning in the
     *  DramBuffer LRU (page cache and SSD-internal buffer). */
    bool pinHotFrames = false;

    /** How many LRU-tail candidates the cold-first victim selector
     *  examines before giving up and taking the exact LRU tail. Bounds
     *  the per-eviction work (and the pinned fraction: at most the
     *  scan window can be skipped over). */
    std::uint32_t pinScanLimit = 8;

    /** Consumer 2: background promotion (flash -> buffer) and early
     *  demotion (dirty buffer frame -> flash) of frames as
     *  background-priority tracked flash ops, paced off the GC
     *  watermark band. Schedules events: platforms whose inline path
     *  reaches the SSD must decline tryAccess() while this is on. */
    bool migration = false;

    /** Frames promoted/demoted per migration step. */
    std::uint32_t migBatchFrames = 4;

    /** Tracker frames scanned per migration step while hunting for
     *  candidates (bounds per-step work on large devices). */
    std::uint32_t migScanFrames = 256;

    /** Quiet window after the last host op before a migration step
     *  fires (idle-time tiering, like the FTL's gcIdleThreshold). */
    Tick migIdleDelay = microseconds(50);

    /** Consumer 3: hot/cold-aware FTL placement at write time — hot
     *  writes share the active block, cold writes pack into the
     *  gcStreamBlocks relocation stream so GC victims are born
     *  segregated. Requires FtlConfig::gcStreamBlocks > 0 to act. */
    bool coldWritePlacement = false;
};

/**
 * Per-frame decaying hotness monitor (see the file header for the
 * decay/epoch contract). Pre-sized at construction; all methods are
 * O(1) except the cold-path extraction helpers.
 */
class HotnessTracker
{
  public:
    /** Track @p span_bytes of address space at cfg.frameBytes grain. */
    HotnessTracker(std::uint64_t span_bytes, const TieringConfig& cfg);

    /** Record one access to @p addr (decay + saturating increment). */
    HAMS_HOT_PATH void
    touch(Addr addr)
    {
        std::uint64_t frame = addr / cfg.frameBytes;
        if (frame >= entries.size())
            return; // folded/out-of-span addresses carry no signal
        Entry& e = entries[frame];
        std::uint32_t shift = _epoch - e.stamp;
        std::uint16_t c = shift >= 16 ? 0
                                      : static_cast<std::uint16_t>(
                                            e.count >> shift);
        if (c != 0xFFFF)
            ++c;
        e.count = c;
        e.stamp = _epoch;
        if (++sinceEpoch >= cfg.epochAccesses) {
            sinceEpoch = 0;
            ++_epoch;
        }
    }

    /** Decayed count of @p frame right now (no state change). */
    HAMS_HOT_PATH std::uint16_t
    countOf(std::uint64_t frame) const
    {
        const Entry& e = entries[frame];
        std::uint32_t shift = _epoch - e.stamp;
        return shift >= 16
                   ? 0
                   : static_cast<std::uint16_t>(e.count >> shift);
    }

    /** True when @p frame's decayed count reaches the hot threshold. */
    HAMS_HOT_PATH bool
    isHotFrame(std::uint64_t frame) const
    {
        return frame < entries.size() &&
               countOf(frame) >= cfg.hotThreshold;
    }

    /** isHotFrame() of the frame containing @p addr. */
    HAMS_HOT_PATH bool
    isHotAddr(Addr addr) const
    {
        return isHotFrame(addr / cfg.frameBytes);
    }

    std::uint64_t frames() const { return entries.size(); }
    std::uint64_t frameOf(Addr addr) const { return addr / cfg.frameBytes; }
    std::uint32_t epoch() const { return _epoch; }
    const TieringConfig& config() const { return cfg; }

    /**
     * CHMU-style top-range extraction: coalesce currently-hot frames
     * into [first, count) runs, ascending. Cold path (migration steps,
     * tests); @p out is reused scratch.
     */
    HAMS_COLD_PATH void
    hotRanges(std::vector<std::pair<std::uint64_t, std::uint64_t>>& out)
        const;

    /** Forget everything (power failure: hotness is volatile advice). */
    HAMS_COLD_PATH void clear();

  private:
    /** One frame: last-touch epoch stamp + saturating counter. */
    struct Entry
    {
        std::uint16_t count = 0;
        std::uint32_t stamp = 0;
    };

    TieringConfig cfg;
    std::vector<Entry> entries;
    std::uint32_t _epoch = 0;
    std::uint32_t sinceEpoch = 0;
};

} // namespace hams

#endif // HAMS_CORE_HOTNESS_TRACKER_HH_

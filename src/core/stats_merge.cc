#include "core/stats_merge.hh"

#include <algorithm>

namespace hams {

void
mergeHamsStats(HamsStats& into, const HamsStats& from)
{
    into.accesses += from.accesses;
    into.hits += from.hits;
    into.misses += from.misses;
    into.fills += from.fills;
    into.cleanVictims += from.cleanVictims;
    into.dirtyEvictions += from.dirtyEvictions;
    into.prpClones += from.prpClones;
    into.waitQueued += from.waitQueued;
    into.redundantEvictionsAvoided += from.redundantEvictionsAvoided;
    into.persistGateWaits += from.persistGateWaits;
    // Depth peaks: each shard's wait lists and gate queue are separate
    // structures — the platform-wide peak is the deepest any one of
    // them got, not the sum.
    into.waiterPeakDepth =
        std::max(into.waiterPeakDepth, from.waiterPeakDepth);
    into.gateQueuePeakDepth =
        std::max(into.gateQueuePeakDepth, from.gateQueuePeakDepth);
    into.replayedCommands += from.replayedCommands;
    into.degradedAccesses += from.degradedAccesses;
    into.restoreStalls += from.restoreStalls;
    into.recoveryGateWaits += from.recoveryGateWaits;
    into.memoryDelay += from.memoryDelay;
}

void
mergeEngineStats(NvmeEngineStats& into, const NvmeEngineStats& from)
{
    into.submitted += from.submitted;
    into.completed += from.completed;
    into.journalSets += from.journalSets;
    into.journalClears += from.journalClears;
    into.replayed += from.replayed;
}

void
mergeFtlStats(FtlStats& into, const FtlStats& from)
{
    into.hostReads += from.hostReads;
    into.hostWrites += from.hostWrites;
    into.gcRuns += from.gcRuns;
    into.gcRelocations += from.gcRelocations;
    into.erases += from.erases;
    into.gcBatches += from.gcBatches;
    into.gcIdleKicks += from.gcIdleKicks;
    into.gcWriteStalls += from.gcWriteStalls;
    into.gcStallTicks += from.gcStallTicks;
    into.gcForegroundOverlap += from.gcForegroundOverlap;
    into.gcStreamBlocks += from.gcStreamBlocks;
    into.gcQualityDeferrals += from.gcQualityDeferrals;
    into.tierColdWrites += from.tierColdWrites;
    into.tierBgReads += from.tierBgReads;
    into.tierBgWrites += from.tierBgWrites;
    // Pacer levels are instantaneous/peak readings per shard, not
    // event counts: aggregate as maxima.
    into.paceLevel = std::max(into.paceLevel, from.paceLevel);
    into.paceLevelMax = std::max(into.paceLevelMax, from.paceLevelMax);
}

} // namespace hams

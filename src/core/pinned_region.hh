/**
 * @file
 * The MMU-invisible pinned NVDIMM region.
 *
 * HAMS carves the top of the NVDIMM (about 512 MB) out of the MoS
 * address pool and stores its NVMe machinery there: the SQ/CQ ring
 * buffers, the PRP pool used to clone pages under DMA, the MSI table and
 * the wait queue (paper Fig. 9). Because it lives in the NVDIMM, it is
 *
 *  - invisible to software (cannot be corrupted by the OS or users), and
 *  - persistent, which is exactly what the journal-tag recovery scan
 *    needs after a power failure.
 */

#ifndef HAMS_CORE_PINNED_REGION_HH_
#define HAMS_CORE_PINNED_REGION_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/nvdimm.hh"
#include "nvme/queue_pair.hh"
#include "sim/annotations.hh"
#include "sim/types.hh"

namespace hams {

/** Pinned-region sizing. */
struct PinnedRegionConfig
{
    std::uint64_t size = 512ull << 20;  //!< carve-out at top of NVDIMM
    std::uint16_t queueEntries = 1024;  //!< SQ/CQ ring entries
    std::uint32_t prpFrameBytes = 128 * 1024; //!< clone frame = MoS page
};

/**
 * Layout manager plus PRP-pool allocator for the pinned region.
 */
class PinnedRegion
{
  public:
    PinnedRegion(Nvdimm& nvdimm, const PinnedRegionConfig& cfg);

    /** First byte of the pinned region inside the NVDIMM. */
    Addr base() const { return _base; }

    /** Bytes below the pinned region, usable as MoS cache. */
    std::uint64_t cacheBytes() const { return _base; }

    /** True if @p nvdimm_addr falls inside the pinned region. */
    HAMS_HOT_PATH bool contains(Addr nvdimm_addr) const
    {
        return nvdimm_addr >= _base;
    }

    /** The (single) hardware I/O queue pair backed by this region. */
    QueuePair& queuePair() { return *qp; }

    /** @name PRP pool. */
    ///@{
    /** Allocate one clone frame; panics if the pool is exhausted. */
    HAMS_HOT_PATH Addr allocPrpFrame();

    /** Return a clone frame to the pool. */
    HAMS_HOT_PATH void freePrpFrame(Addr frame);

    std::uint32_t prpFramesFree() const
    {
        return static_cast<std::uint32_t>(freeFrames.size());
    }

    std::uint32_t prpFramesTotal() const { return totalFrames; }

    HAMS_HOT_PATH bool isPrpFrame(Addr addr) const
    {
        return addr >= prpPoolBase &&
               addr < prpPoolBase + Addr(totalFrames) * cfg.prpFrameBytes;
    }
    ///@}

    /** MSI table slot address for vector @p v. */
    Addr msiSlot(std::uint32_t v) const { return msiBase + v * 16; }

    /**
     * @name NVMe metadata span: [SQ ring][CQ ring][MSI table], i.e.
     * everything before the PRP pool. Recovery priority-restores this
     * span first — the journal scan reads the SQ ring.
     */
    ///@{
    Addr metadataBase() const { return _base; }
    std::uint64_t metadataBytes() const { return prpPoolBase - _base; }
    ///@}

    const PinnedRegionConfig& config() const { return cfg; }

  private:
    PinnedRegionConfig cfg;
    Nvdimm& nvdimm;
    Addr _base;
    Addr sqBase;
    Addr cqBase;
    Addr prpPoolBase;
    Addr msiBase;
    std::uint32_t totalFrames;
    std::vector<Addr> freeFrames;
    std::unique_ptr<QueuePair> qp;
};

} // namespace hams

#endif // HAMS_CORE_PINNED_REGION_HH_

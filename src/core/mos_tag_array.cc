#include "core/mos_tag_array.hh"

#include "sim/logging.hh"

namespace hams {

MosTagArray::MosTagArray(std::uint64_t cache_bytes, std::uint32_t page_bytes)
    : _pageBytes(page_bytes)
{
    if (page_bytes == 0 || (page_bytes & (page_bytes - 1)) != 0)
        fatal("MoS page size must be a power of two, got ", page_bytes);
    if (cache_bytes < page_bytes)
        fatal("MoS cache smaller than one page");
    entries.resize(cache_bytes / page_bytes);
}

std::uint64_t
MosTagArray::residentCount() const
{
    std::uint64_t n = 0;
    for (const auto& e : entries)
        n += e.valid;
    return n;
}

std::uint64_t
MosTagArray::dirtyCount() const
{
    std::uint64_t n = 0;
    for (const auto& e : entries)
        n += e.valid && e.dirty;
    return n;
}

void
MosTagArray::clearBusyBits()
{
    for (auto& e : entries)
        e.busy = false;
}

void
MosTagArray::invalidateAll()
{
    for (auto& e : entries)
        e = MosTagEntry{};
}

} // namespace hams

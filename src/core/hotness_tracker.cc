#include "core/hotness_tracker.hh"

#include "sim/logging.hh"

namespace hams {

HotnessTracker::HotnessTracker(std::uint64_t span_bytes,
                               const TieringConfig& cfg)
    : cfg(cfg)
{
    if (cfg.frameBytes == 0)
        fatal("tiering frameBytes must be non-zero");
    if (cfg.epochAccesses == 0)
        fatal("tiering epochAccesses must be non-zero");
    if (cfg.hotThreshold == 0)
        fatal("tiering hotThreshold must be non-zero (0 would mark "
              "every frame hot and pin the whole cache)");
    std::uint64_t n = (span_bytes + cfg.frameBytes - 1) / cfg.frameBytes;
    if (n == 0)
        fatal("hotness tracker spans zero frames");
    entries.assign(n, Entry{});
}

void
HotnessTracker::hotRanges(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) const
{
    out.clear();
    bool open = false;
    for (std::uint64_t f = 0; f < entries.size(); ++f) {
        if (countOf(f) >= cfg.hotThreshold) {
            if (open)
                ++out.back().second;
            else
                out.emplace_back(f, 1);
            open = true;
        } else {
            open = false;
        }
    }
}

void
HotnessTracker::clear()
{
    for (Entry& e : entries)
        e = Entry{};
    _epoch = 0;
    sinceEpoch = 0;
}

} // namespace hams

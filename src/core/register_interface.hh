/**
 * @file
 * The register-based DDR4 interface of advanced HAMS (paper SSV-A,
 * Fig. 12).
 *
 * Instead of doorbell registers and PCIe BARs, the unboxed ULL-Flash
 * exposes command/address/data buffer registers directly on the DDR4
 * channel it shares with the NVDIMM:
 *
 *  - To send an I/O request, the HAMS controller deselects the NVDIMM
 *    (CS# high), issues a write command (WE#/CAS# low, RAS# high) and
 *    streams the 64 B NVMe command as an 8-beat data burst.
 *  - A *lock register* arbitrates bus mastership: while it is set, the
 *    NVMe controller owns the channel for its DMA into the NVDIMM and
 *    the HAMS cache logic must not drive it.
 *
 * Timing is charged to the shared DDR4 bus via DramDevice::occupyBus, so
 * register traffic and NVDIMM traffic contend exactly as they would on
 * the real channel.
 */

#ifndef HAMS_CORE_REGISTER_INTERFACE_HH_
#define HAMS_CORE_REGISTER_INTERFACE_HH_

#include <cstdint>

#include "dram/nvdimm.hh"
#include "sim/annotations.hh"
#include "sim/types.hh"

namespace hams {

/** Statistics of the register path. */
struct RegisterInterfaceStats
{
    std::uint64_t commandsSent = 0;
    std::uint64_t lockAcquisitions = 0;
    Tick busTime = 0;
};

/**
 * Command delivery and lock-register arbitration over the shared DDR4
 * channel.
 */
class RegisterInterface
{
  public:
    explicit RegisterInterface(Nvdimm& nvdimm);

    /**
     * Deliver one 64 B NVMe command to the ULL-Flash buffer registers.
     * Costs CS# deselect + write command (2 clocks) + one BL8 burst on
     * the shared bus.
     * @return tick at which the command is latched by the device.
     */
    HAMS_HOT_PATH Tick sendCommand(Tick at);

    /**
     * NVMe controller takes bus mastership for a DMA.
     * @return tick at which the lock is observed set.
     */
    HAMS_HOT_PATH Tick acquireLock(Tick at);

    /** NVMe controller releases the bus. */
    HAMS_HOT_PATH void releaseLock(Tick at);

    /** True while the NVMe controller masters the bus. */
    bool locked() const { return _locked; }

    const RegisterInterfaceStats& stats() const { return _stats; }

  private:
    Nvdimm& nvdimm;
    bool _locked = false;
    RegisterInterfaceStats _stats;
};

} // namespace hams

#endif // HAMS_CORE_REGISTER_INTERFACE_HH_

/**
 * @file
 * The hardware NVMe engine inside the HAMS controller (paper SSV-B/C).
 *
 * This block is what lets HAMS hide the entire NVMe protocol from the
 * OS: it composes 64 B commands, enqueues them in the SQ that lives in
 * the pinned NVDIMM region, rings the device doorbell (or, in advanced
 * HAMS, streams the command over the DDR4 register interface), tracks
 * completions, and maintains the *journal tag* of every in-flight
 * command so a power failure can be repaired by rescanning the SQ.
 *
 * Hot-path discipline: completion callbacks are inline-stored
 * (InlineFunction) and the in-flight command table is a fixed,
 * cid-indexed array instead of a hash map, so submit/complete never
 * allocate in steady state.
 */

#ifndef HAMS_CORE_NVME_ENGINE_HH_
#define HAMS_CORE_NVME_ENGINE_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pinned_region.hh"
#include "core/register_interface.hh"
#include "nvme/nvme_controller.hh"
#include "sim/annotations.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"

namespace hams {

/** Engine statistics. */
struct NvmeEngineStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t journalSets = 0;
    std::uint64_t journalClears = 0;
    std::uint64_t replayed = 0;
};

/**
 * Submits NVMe commands on behalf of the HAMS cache logic and owns the
 * journal-tag lifecycle.
 */
class HamsNvmeEngine
{
  public:
    /** Completion callback: (command, latency trace, completion tick). */
    using DoneCb = InlineFunction<void(const NvmeCommand&,
                                       const NvmeCmdTrace&, Tick)>;

    /**
     * @param reg_if register-based interface for advanced HAMS, or
     *               nullptr for the baseline PCIe doorbell path
     */
    HamsNvmeEngine(EventQueue& eq, NvmeController& ctrl,
                   PinnedRegion& pinned, RegisterInterface* reg_if);

    /**
     * Submit one command. The engine assigns the cid, sets the journal
     * tag, writes the SQ slot (persistently) and notifies the device.
     * If the command's PRP points into the PRP pool, the frame is
     * returned to the pool automatically on completion.
     * @return the assigned cid.
     */
    HAMS_HOT_PATH std::uint16_t submit(NvmeCommand cmd, Tick at, DoneCb done);

    /** Commands submitted but not yet completed. */
    std::uint32_t outstanding() const { return _outstanding; }

    /**
     * Scan the (persistent) SQ region for commands whose journal tag is
     * still set — exactly the power-up check of paper Fig. 15.
     */
    HAMS_COLD_PATH std::vector<NvmeCommand> scanJournal() const;

    /**
     * Drop volatile state after a power failure. Ring contents and
     * journal tags survive in the pinned region; the cid map does not.
     */
    HAMS_COLD_PATH void onPowerFail();

    /**
     * @name Phase-2/3 recovery (paper Fig. 15), split so the caller can
     * charge replay per entry as scheduled events.
     *
     * prepareReplay() rebuilds the SQ for replay: it resets the ring
     * pointers and *compacts* the journal — the @p pending commands
     * (from scanJournal()) are rewritten into slots [0, n) with their
     * journal tags still set, and every other slot's tag is cleared.
     * The journal is therefore complete at every event boundary: a cut
     * at any point mid-replay rescans exactly the not-yet-replayed
     * entries. The caller then calls submitReplay() once per entry, in
     * order — entry i's push lands on slot i, overwriting its own
     * compacted copy with a freshly-journalled duplicate, so replay is
     * idempotent. Foreground submits must be held off until every
     * prepared entry has been re-pushed (the controller's recovery
     * gate), or the slot correspondence breaks.
     */
    ///@{
    HAMS_COLD_PATH void prepareReplay(const std::vector<NvmeCommand>& pending);

    /** Re-issue one journalled command; counts into stats().replayed. */
    HAMS_COLD_PATH std::uint16_t submitReplay(const NvmeCommand& cmd, Tick at,
                               DoneCb done);
    ///@}

    const NvmeEngineStats& stats() const { return _stats; }

  private:
    /** Deliver a doorbell/command notification to the device. */
    HAMS_HOT_PATH Tick notifyDevice(Tick at);

    HAMS_HOT_PATH void handleCompletion(const NvmeCompletion& cqe, const NvmeCommand& cmd,
                          const NvmeCmdTrace& trace, Tick at);

    EventQueue& eq;
    NvmeController& ctrl;
    PinnedRegion& pinned;
    RegisterInterface* regIf;
    std::uint16_t qid;
    std::uint16_t nextCid = 1;
    NvmeEngineStats _stats;
    std::uint32_t _outstanding = 0;

    /**
     * In-flight table indexed directly by the 16-bit cid (SQ slots
     * free at fetch time, so outstanding commands are NOT bounded by
     * SQ depth — only the full cid space guarantees no collision).
     * Stale completions from before a power failure fail the live
     * check; a submit that would overwrite a live entry (cid space
     * exhausted by 64 Ki outstanding commands) panics instead of
     * silently dropping a completion callback.
     */
    struct Pending
    {
        std::uint16_t slot = 0;
        bool live = false;
        DoneCb done;
    };
    std::vector<Pending> inFlight;
};

} // namespace hams

#endif // HAMS_CORE_NVME_ENGINE_HH_

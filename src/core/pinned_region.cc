#include "core/pinned_region.hh"

#include "sim/logging.hh"

namespace hams {

PinnedRegion::PinnedRegion(Nvdimm& nvdimm, const PinnedRegionConfig& cfg)
    : cfg(cfg), nvdimm(nvdimm)
{
    if (cfg.size >= nvdimm.capacity())
        fatal("pinned region (", cfg.size, ") swallows the whole NVDIMM");
    if (!nvdimm.data())
        fatal("pinned region requires a functional NVDIMM data plane");

    _base = nvdimm.capacity() - cfg.size;

    // Layout inside the region: [SQ ring][CQ ring][MSI table][PRP pool].
    Addr cursor = _base;
    sqBase = cursor;
    cursor += Addr(cfg.queueEntries) * sizeof(NvmeCommand);
    cqBase = cursor;
    cursor += Addr(cfg.queueEntries) * sizeof(NvmeCompletion);
    msiBase = cursor;
    cursor += 4096; // 256 vectors x 16 B
    // Round the pool base up to the frame size for clean addressing.
    Addr pool_start =
        (cursor + cfg.prpFrameBytes - 1) / cfg.prpFrameBytes *
        cfg.prpFrameBytes;
    prpPoolBase = pool_start;

    Addr end = nvdimm.capacity();
    if (pool_start >= end)
        fatal("pinned region too small for its ring buffers");
    totalFrames =
        static_cast<std::uint32_t>((end - pool_start) / cfg.prpFrameBytes);
    if (totalFrames == 0)
        fatal("PRP pool has no frames; enlarge the pinned region");

    freeFrames.reserve(totalFrames);
    for (std::uint32_t i = totalFrames; i-- > 0;)
        freeFrames.push_back(pool_start + Addr(i) * cfg.prpFrameBytes);

    qp = std::make_unique<QueuePair>(*nvdimm.data(), sqBase, cqBase,
                                     cfg.queueEntries);
}

Addr
PinnedRegion::allocPrpFrame()
{
    if (freeFrames.empty())
        panic("PRP pool exhausted (", totalFrames, " frames)");
    Addr f = freeFrames.back();
    freeFrames.pop_back();
    return f;
}

void
PinnedRegion::freePrpFrame(Addr frame)
{
    if (!isPrpFrame(frame))
        panic("freeing a non-PRP-pool address");
    HAMS_LINT_SUPPRESS("free-list return: capacity was reserved for all "
                       "frames at construction, so this never reallocates")
    freeFrames.push_back(frame);
}

} // namespace hams

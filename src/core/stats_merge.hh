/**
 * @file
 * One place that knows how to aggregate per-shard (or per-device)
 * engine statistics without double-counting.
 *
 * A sharded platform runs M independent HAMS stacks; benches and tests
 * want ONE HamsStats/NvmeEngineStats/FtlStats view of the whole
 * platform. Plain event counters sum across shards, but depth peaks
 * (waiterPeakDepth, gateQueuePeakDepth, paceLevelMax) are maxima of
 * per-shard maxima — summing them would report contention no single
 * structure ever saw. These helpers encode that distinction once, so
 * the sharded platform, the benches and the tests can never aggregate
 * differently (the RunResult twin lives next to finalizeRunResult in
 * cpu/core_model.hh).
 */

#ifndef HAMS_CORE_STATS_MERGE_HH_
#define HAMS_CORE_STATS_MERGE_HH_

#include "core/hams_controller.hh"
#include "core/nvme_engine.hh"
#include "ftl/page_ftl.hh"

namespace hams {

/** Sum @p from's counters into @p into; peak depths take the max. */
void mergeHamsStats(HamsStats& into, const HamsStats& from);

/** Sum @p from's counters into @p into (all plain counters). */
void mergeEngineStats(NvmeEngineStats& into, const NvmeEngineStats& from);

/** Sum @p from's counters into @p into; pacer levels take the max. */
void mergeFtlStats(FtlStats& into, const FtlStats& from);

} // namespace hams

#endif // HAMS_CORE_STATS_MERGE_HH_

#include "core/hams_system.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "ssd/device_configs.hh"

namespace hams {

HamsSystemConfig
HamsSystemConfig::loosePersist()
{
    HamsSystemConfig c;
    c.mode = HamsMode::Persist;
    c.topology = HamsTopology::Loose;
    return c;
}

HamsSystemConfig
HamsSystemConfig::looseExtend()
{
    HamsSystemConfig c;
    c.mode = HamsMode::Extend;
    c.topology = HamsTopology::Loose;
    return c;
}

HamsSystemConfig
HamsSystemConfig::tightPersist()
{
    HamsSystemConfig c;
    c.mode = HamsMode::Persist;
    c.topology = HamsTopology::Tight;
    return c;
}

HamsSystemConfig
HamsSystemConfig::tightExtend()
{
    HamsSystemConfig c;
    c.mode = HamsMode::Extend;
    c.topology = HamsTopology::Tight;
    return c;
}

/**
 * DMA adapter routing PRP-directed device accesses to the NVDIMM. In
 * the tight topology each bulk DMA brackets the access with the lock
 * register so the NVMe controller and the cache logic never drive the
 * shared channel simultaneously.
 */
class HamsSystem::NvdimmTarget : public DmaTarget
{
  public:
    NvdimmTarget(Nvdimm& nvdimm, RegisterInterface* reg_if, Tick fwd)
        : nvdimm(nvdimm), regIf(reg_if), forwardLatency(fwd)
    {
    }

    Tick
    dmaAccess(Addr addr, std::uint32_t size, MemOp op, Tick at) override
    {
        Tick t = at + forwardLatency;
        // Queue-entry traffic (SQE/CQE) is latency-only: it rides the
        // command path and must not queue behind bulk page DMA.
        if (size <= 64)
            return t + nanoseconds(60);
        if (regIf) {
            t = regIf->acquireLock(t);
            Tick done = nvdimm.access(addr, size, op, t);
            regIf->releaseLock(done);
            return done;
        }
        return nvdimm.access(addr, size, op, t);
    }

    SparseMemory* dmaData() override { return nvdimm.data(); }

  private:
    Nvdimm& nvdimm;
    RegisterInterface* regIf;
    Tick forwardLatency;
};

namespace {

/** The tight topology has no PCIe: transfers ride the DDR4 channel the
 *  NVDIMM access itself already pays for, so the "link" is just the
 *  register-latch latency. */
LinkConfig
onChannelLink()
{
    LinkConfig c;
    c.bandwidth = 1e12; // not the bottleneck: DDR4 occupancy is charged
    c.maxPayload = 4096;
    c.headerBytes = 0;
    c.propagation = nanoseconds(15);
    c.fullDuplex = true;
    return c;
}

std::string
variantName(const HamsSystemConfig& cfg)
{
    std::string n = "hams-";
    n += cfg.topology == HamsTopology::Loose ? 'L' : 'T';
    n += cfg.mode == HamsMode::Persist ? 'P' : 'E';
    return n;
}

} // namespace

HamsSystem::HamsSystem(const HamsSystemConfig& cfg)
    : cfg(cfg), _name(variantName(cfg))
{
    NvdimmConfig ncfg = cfg.nvdimm;
    ncfg.functionalData = true; // pinned region requires it
    nvdimm = std::make_unique<Nvdimm>(ncfg);

    // Advanced HAMS removes the SSD-internal DRAM and adds supercaps;
    // baseline HAMS keeps the stock device but (per SSIV-B) also gains
    // supercaps so extend mode can trust the buffer.
    bool with_buffer = cfg.topology == HamsTopology::Loose;
    SsdConfig scfg = ullFlashConfig(cfg.ssdRawBytes, cfg.functionalData,
                                    /*with_supercap=*/true, with_buffer);
    scfg.ftl = cfg.ftl;
    ssd = std::make_unique<Ssd>(scfg, &eq);

    link = std::make_unique<PcieLink>(cfg.topology == HamsTopology::Loose
                                          ? ullFlashLink()
                                          : onChannelLink());

    if (cfg.topology == HamsTopology::Tight)
        regIf = std::make_unique<RegisterInterface>(*nvdimm);

    dmaTarget = std::make_unique<NvdimmTarget>(*nvdimm, regIf.get(),
                                               cfg.mchForwardLatency);
    nvmeCtrl = std::make_unique<NvmeController>(eq, *ssd, *link,
                                                *dmaTarget);

    PinnedRegionConfig pcfg;
    pcfg.size = cfg.pinnedBytes;
    pcfg.queueEntries = cfg.queueEntries;
    pcfg.prpFrameBytes = cfg.mosPageBytes;
    pinned = std::make_unique<PinnedRegion>(*nvdimm, pcfg);

    engine = std::make_unique<HamsNvmeEngine>(eq, *nvmeCtrl, *pinned,
                                              regIf.get());

    HamsControllerConfig ccfg;
    ccfg.pageBytes = cfg.mosPageBytes;
    ccfg.mode = cfg.mode;
    ccfg.hazard = cfg.hazard;
    ccfg.functionalData = cfg.functionalData;
    std::uint64_t mos_capacity =
        ssd->capacityBytes() / cfg.mosPageBytes * cfg.mosPageBytes;
    ctrl = std::make_unique<HamsController>(eq, *nvdimm, *engine, *pinned,
                                            mos_capacity, ccfg);

    if (cfg.tiering.enabled) {
        hotness = std::make_unique<HotnessTracker>(mos_capacity,
                                                   cfg.tiering);
        ctrl->attachHotness(hotness.get());
        ssd->attachTiering(hotness.get(), cfg.tiering);
    }

    inform(_name, ": MoS pool ", mos_capacity >> 20, " MiB, NVDIMM cache ",
           pinned->cacheBytes() >> 20, " MiB, page ",
           cfg.mosPageBytes >> 10, " KiB");
}

HamsSystem::~HamsSystem() = default;

void
HamsSystem::access(const MemAccess& acc, Tick at, AccessCb cb)
{
    ctrl->access(acc, at, std::move(cb));
}

Tick
HamsSystem::write(Addr addr, const void* src, std::uint64_t size)
{
    const auto* in = static_cast<const std::uint8_t*>(src);
    Tick t = eq.now();
    while (size > 0) {
        std::uint64_t in_page =
            cfg.mosPageBytes - addr % cfg.mosPageBytes;
        auto chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(size, in_page));
        bool done = false;
        Tick when = 0;
        MemAccess acc{addr, chunk, MemOp::Write};
        ctrl->access(acc, in, nullptr, t,
                     [&](Tick w, const LatencyBreakdown&) {
                         done = true;
                         when = w;
                     });
        while (!done && eq.step()) {
        }
        if (!done)
            panic("HamsSystem::write never completed");
        t = when;
        addr += chunk;
        in += chunk;
        size -= chunk;
    }
    return t;
}

Tick
HamsSystem::read(Addr addr, void* dst, std::uint64_t size)
{
    auto* out = static_cast<std::uint8_t*>(dst);
    Tick t = eq.now();
    while (size > 0) {
        std::uint64_t in_page =
            cfg.mosPageBytes - addr % cfg.mosPageBytes;
        auto chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(size, in_page));
        bool done = false;
        Tick when = 0;
        MemAccess acc{addr, chunk, MemOp::Read};
        ctrl->access(acc, nullptr, out, t,
                     [&](Tick w, const LatencyBreakdown&) {
                         done = true;
                         when = w;
                     });
        while (!done && eq.step()) {
        }
        if (!done)
            panic("HamsSystem::read never completed");
        t = when;
        addr += chunk;
        out += chunk;
        size -= chunk;
    }
    return t;
}

Tick
HamsSystem::powerFail(std::uint64_t max_drain_frames)
{
    // In-flight events evaporate with the power.
    eq.reset(false);
    nvmeCtrl->powerFail(/*events_dropped=*/true);
    engine->onPowerFail();
    ctrl->onPowerFail();
    Tick drain = ssd->powerFail(max_drain_frames);
    // A second failure during the failure handling itself finds the
    // NVDIMM already isolated and backed up (Protected): nothing left
    // to do for it, and the component-level state machine would
    // rightly reject the call. A failure *during recovery* finds it
    // Restoring: it re-backs-up the restored prefix.
    if (nvdimm->state() == Nvdimm::State::Operational ||
        nvdimm->state() == Nvdimm::State::Restoring)
        nvdimm->powerFail();
    link->reset();
    // Hotness is volatile advice: it does not survive the cut.
    if (hotness)
        hotness->clear();
    _recovering = false;
    return drain;
}

void
HamsSystem::beginRecovery(std::function<void(Tick)> done)
{
    if (_recovering)
        fatal("beginRecovery while a recovery is already in flight");
    Tick at = eq.now();
    if (nvdimm->state() == Nvdimm::State::Operational) {
        // Nothing failed (or recovery already completed): idempotent.
        if (done)
            done(at);
        return;
    }
    _recovering = true;
    ssd->powerRestore();
    nvdimm->beginRestore(
        eq, at,
        [this](std::uint64_t first, std::uint64_t count, Tick when) {
            ctrl->onFramesRestored(first, count, when);
        },
        [this](Tick when) { ctrl->onRestoreComplete(when); });
    ctrl->beginRecovery(at, [this, done = std::move(done)](Tick when) {
        _recovering = false;
        if (done)
            done(when);
    });
}

Tick
HamsSystem::recover()
{
    bool done = false;
    Tick when = eq.now();
    beginRecovery([&](Tick t) {
        done = true;
        when = t;
    });

    // Pump to completion with a bounded-progress check: every window
    // of events, something must have moved — the restore cursor, the
    // replay chain, or simulated time. A wedged recovery dumps its
    // cursor state instead of spinning forever.
    constexpr std::uint64_t window = 1u << 16;
    std::uint64_t steps = 0;
    std::uint64_t last_frames = ~std::uint64_t(0);
    std::uint64_t last_replayed = ~std::uint64_t(0);
    Tick last_now = maxTick;
    while (!done && eq.step()) {
        if (++steps < window)
            continue;
        steps = 0;
        std::uint64_t frames = nvdimm->framesRestored();
        std::uint64_t replayed = ctrl->recoveryReplayCompleted();
        if (frames == last_frames && replayed == last_replayed &&
            eq.now() == last_now)
            fatal("HAMS recovery stalled: no progress over ", window,
                  " events (queue depth ", eq.pending(),
                  ", frames restored ", frames, "/",
                  nvdimm->restoreFrames(), ", cursor at ",
                  nvdimm->restoreCursorFrame(), ", replay ", replayed,
                  "/", ctrl->recoveryReplayTotal(), " entries)");
        last_frames = frames;
        last_replayed = replayed;
        last_now = eq.now();
    }
    if (!done)
        fatal("HAMS recovery queue drained incomplete (frames restored ",
              nvdimm->framesRestored(), "/", nvdimm->restoreFrames(),
              ", cursor at ", nvdimm->restoreCursorFrame(), ", replay ",
              ctrl->recoveryReplayCompleted(), "/",
              ctrl->recoveryReplayTotal(), " entries)");
    return when;
}

EnergyBreakdownJ
HamsSystem::memoryEnergy(Tick elapsed) const
{
    EnergyBreakdownJ e;

    DramPowerModel dram_model;
    const DramActivity& act =
        nvdimm->controller().device().activity();
    e.nvdimm = dram_model.energyJ(act, elapsed, 2);

    if (ssd->buffer()) {
        // SSD-internal DRAM: background-dominated (the paper notes it
        // draws 17% more power than a 32-chip flash complex) plus
        // per-burst transfer energy.
        DramActivity buf_act;
        std::uint64_t bursts = ssd->bufferBytesAccessed() / 64;
        buf_act.reads = bursts / 2;
        buf_act.writes = bursts - buf_act.reads;
        buf_act.activates = bursts / 64;
        e.internalDram = dram_model.energyJ(buf_act, elapsed, 1);
    }

    FlashPowerModel flash_model{FlashPowerParams::zNand()};
    const FlashGeometry& g = ssd->config().geom;
    e.znand = flash_model.energyJ(
        ssd->flashActivity(), elapsed,
        std::uint64_t(g.channels) * g.packagesPerChannel *
            g.diesPerPackage);
    return e;
}

} // namespace hams

/**
 * @file
 * HamsSystem: the public face of the library.
 *
 * Assembles NVDIMM + ULL-Flash + link + NVMe controller + pinned region
 * + NVMe engine + HAMS cache logic into one platform, in any of the four
 * paper variants:
 *
 *   hams-LP  loose (PCIe) topology, persist mode
 *   hams-LE  loose (PCIe) topology, extend mode
 *   hams-TP  tight (DDR4 register interface) topology, persist mode
 *   hams-TE  tight topology, extend mode
 *
 * The tight topology unboxes the ULL-Flash: no PCIe encapsulation, no
 * SSD-internal DRAM, DMA straight into the NVDIMM over the shared DDR4
 * channel guarded by the lock register.
 *
 * ## Recovery-path contract (online recovery)
 *
 * Recovery after powerFail() is an event-driven subsystem, not a
 * stop-the-world wall. beginRecovery() starts it and returns at once;
 * recover() is the blocking wrapper that pumps the queue to completion.
 *
 * **Restore bitmap.** The NVDIMM restores itself incrementally
 * (Nvdimm::beginRestore): a per-frame restored-bitmap tracks which
 * restoreFrameBytes-sized frames have streamed back from the on-DIMM
 * flash. A background cursor claims batches in address order; priority
 * restores (Nvdimm::requestRestoreSpan) jump demand-touched frames
 * ahead of the cursor. All restore work serialises on the single
 * on-DIMM stream, so total restore time equals the full-restore RTO —
 * only the order is demand-driven. The NVMe metadata span (SQ/CQ/MSI)
 * is priority-restored first so the journal scan can run early.
 *
 * **Degraded-mode admission.** While recovery is in flight the
 * controller serves traffic degraded: hits on restored frames complete
 * at normal latency; an access to an unrestored frame parks on the
 * frame's pooled wait list behind a priority restore and is never
 * served stale; misses additionally hold on the recovery gate until
 * journal replay has drained (replay rebuilds the SQ in place, slot by
 * slot, and foreground submits must not interleave with its pushes).
 * Replay itself is charged per entry (HamsControllerConfig::
 * replayEntryCost plus the entry's own restore/IO wait), so RTO scales
 * with the journalled dirty-state size, not just capacity.
 *
 * **Second-failure semantics.** powerFail() during recovery is legal
 * at any event boundary. The NVDIMM re-backs-up only the restored
 * prefix (the remainder is still safe in its on-DIMM flash); the
 * journal — compacted by the replay preparation, with not-yet-replayed
 * entries still tagged — is rescanned by the next beginRecovery(), so
 * a second (or Nth) failure mid-restore or mid-replay loses nothing.
 */

#ifndef HAMS_CORE_HAMS_SYSTEM_HH_
#define HAMS_CORE_HAMS_SYSTEM_HH_

#include <cstdint>
#include <memory>
#include <string>

#include "baselines/platform.hh"
#include "core/hams_controller.hh"
#include "core/nvme_engine.hh"
#include "core/pinned_region.hh"
#include "core/register_interface.hh"
#include "dram/nvdimm.hh"
#include "nvme/nvme_controller.hh"
#include "pcie/pcie_link.hh"
#include "ssd/ssd.hh"

namespace hams {

/** Where the ULL-Flash sits (paper SSIV-C). */
enum class HamsTopology : std::uint8_t {
    Loose, //!< storage box behind PCIe (baseline HAMS)
    Tight, //!< on the DDR4 channel (advanced HAMS)
};

/** Top-level configuration. */
struct HamsSystemConfig
{
    HamsMode mode = HamsMode::Extend;
    HamsTopology topology = HamsTopology::Loose;
    HazardPolicy hazard = HazardPolicy::PrpClone;
    std::uint32_t mosPageBytes = 128 * 1024;
    NvdimmConfig nvdimm;                 //!< 8 GiB DDR4-2133 default
    std::uint64_t ssdRawBytes = 16ull << 30;
    /**
     * ULL-Flash FTL knobs (watermarks, wear leveling, background GC).
     * With backgroundGc the device's garbage collector runs as events
     * on the system queue and contends with miss/eviction traffic.
     */
    FtlConfig ftl;
    /**
     * Hotness-aware tiering (core/hotness_tracker.hh). When enabled the
     * system owns a HotnessTracker over the MoS space, feeds it from
     * the controller's access path and wires the consumer knobs into
     * the ULL-Flash (buffer pinning, background migration, cold-write
     * placement). Default-inert: simulated outputs are bit-identical
     * with tiering.enabled = false, and the differential tests pin it.
     */
    TieringConfig tiering;
    std::uint16_t queueEntries = 1024;
    std::uint64_t pinnedBytes = 512ull << 20;
    bool functionalData = true;
    /** MCH forwarding latency for PRP-directed NVMe requests. */
    Tick mchForwardLatency = nanoseconds(20);

    /** The canonical four variants. */
    static HamsSystemConfig loosePersist();
    static HamsSystemConfig looseExtend();
    static HamsSystemConfig tightPersist();
    static HamsSystemConfig tightExtend();
};

/**
 * A fully wired HAMS machine implementing MemoryPlatform.
 */
class HamsSystem : public MemoryPlatform
{
  public:
    explicit HamsSystem(const HamsSystemConfig& cfg);
    ~HamsSystem() override;

    /** @name MemoryPlatform. */
    ///@{
    const std::string& name() const override { return _name; }
    std::uint64_t capacity() const override { return ctrl->mosCapacity(); }
    EventQueue& eventQueue() override { return eq; }
    void access(const MemAccess& acc, Tick at, AccessCb cb) override;
    bool
    tryAccess(const MemAccess& acc, Tick at, InlineCompletion& out) override
    {
        return ctrl->tryAccess(acc, at, out);
    }
    bool persistent() const override { return true; }
    EnergyBreakdownJ memoryEnergy(Tick elapsed) const override;
    ///@}

    /** @name Synchronous data-plane helpers (own the event loop). */
    ///@{
    /** Write bytes into the MoS space; returns the completion tick. */
    Tick write(Addr addr, const void* src, std::uint64_t size);

    /** Read bytes back; returns the completion tick. */
    Tick read(Addr addr, void* dst, std::uint64_t size);
    ///@}

    /** @name Power-failure injection. */
    ///@{
    /**
     * Cut power: all in-flight work vanishes, the NVDIMM backs itself
     * up, the ULL-Flash supercap drains its buffer.
     *
     * Idempotent before recover(): a second failure during the
     * failure handling finds the NVDIMM already Protected and the
     * device state already resolved, and changes nothing.
     *
     * @param max_drain_frames fault-injection hook (see
     *        Ssd::powerFail): a second failure cuts the supercap
     *        drain short after this many frames. Default: full drain.
     * @return ticks the ULL-Flash supercap drain took (0 without a
     *         device buffer) — the shutdown-side cost the recovery
     *         bench reports next to the restore-side RTO.
     */
    Tick powerFail(std::uint64_t max_drain_frames = ~std::uint64_t(0));

    /**
     * Boot and run the paper's Fig. 15 recovery (journal scan + replay)
     * to completion: pumps the event queue until the recovery-complete
     * event fires, with a bounded-progress check instead of a dead-man
     * loop — a wedged recovery fatals with the replay/restore cursor
     * state (queue depth, frames restored, entries replayed).
     * @return tick at which the MoS space is fully recovered.
     */
    Tick recover();

    /**
     * Online recovery: start the incremental NVDIMM restore and the
     * per-entry journal replay as events and return immediately. The
     * MoS space is serviceable (degraded) right away — see the
     * recovery-path contract above; @p done fires when restore and
     * replay have both finished. Idempotent on an Operational system
     * (fires @p done at once); fatal if recovery is already in flight.
     */
    void beginRecovery(std::function<void(Tick)> done);

    bool recovering() const { return _recovering; }
    ///@}

    /** @name Introspection. */
    ///@{
    const HamsStats& stats() const { return ctrl->stats(); }
    const NvmeEngineStats& engineStats() const { return engine->stats(); }
    const HamsSystemConfig& config() const { return cfg; }
    HamsController& controller() { return *ctrl; }
    HamsNvmeEngine& nvmeEngine() { return *engine; }
    NvmeController& nvmeController() { return *nvmeCtrl; }
    Ssd& ullFlash() { return *ssd; }
    /** Hotness tracker, or null when cfg.tiering.enabled is false. */
    HotnessTracker* hotnessTracker() { return hotness.get(); }
    Nvdimm& nvdimmModule() { return *nvdimm; }
    PinnedRegion& pinnedRegion() { return *pinned; }
    RegisterInterface* registerInterface() { return regIf.get(); }
    ///@}

  private:
    /** DMA adapter: PRP-directed device requests go to the NVDIMM. */
    class NvdimmTarget;

    HamsSystemConfig cfg;
    std::string _name;
    EventQueue eq;
    std::unique_ptr<Nvdimm> nvdimm;
    std::unique_ptr<Ssd> ssd;
    std::unique_ptr<PcieLink> link;
    std::unique_ptr<RegisterInterface> regIf;
    std::unique_ptr<NvdimmTarget> dmaTarget;
    std::unique_ptr<NvmeController> nvmeCtrl;
    std::unique_ptr<PinnedRegion> pinned;
    std::unique_ptr<HamsNvmeEngine> engine;
    std::unique_ptr<HamsController> ctrl;
    std::unique_ptr<HotnessTracker> hotness;
    bool _recovering = false;
};

} // namespace hams

#endif // HAMS_CORE_HAMS_SYSTEM_HH_

#include "core/hams_controller.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/logging.hh"

namespace hams {

HamsController::HamsController(EventQueue& eq, Nvdimm& nvdimm,
                               HamsNvmeEngine& engine, PinnedRegion& pinned,
                               std::uint64_t mos_capacity,
                               const HamsControllerConfig& cfg)
    : eq(eq), nvdimm(nvdimm), engine(engine), pinned(pinned), cfg(cfg),
      _mosCapacity(mos_capacity),
      tags(pinned.cacheBytes() - pinned.cacheBytes() % cfg.pageBytes,
           cfg.pageBytes)
{
    if (cfg.pageBytes % nvmeBlockSize != 0)
        fatal("MoS page size must be a multiple of the 4 KiB NVMe block");
    if (mos_capacity % cfg.pageBytes != 0)
        fatal("MoS capacity must be a multiple of the MoS page size");
    if (pinned.config().prpFrameBytes < cfg.pageBytes)
        fatal("PRP pool frames (", pinned.config().prpFrameBytes,
              ") smaller than the MoS page (", cfg.pageBytes, ")");
}

void
HamsController::access(const MemAccess& acc, const std::uint8_t* wdata,
                       std::uint8_t* rdata, Tick at, AccessCb cb)
{
    if (acc.addr + acc.size > _mosCapacity)
        fatal("MoS access [", acc.addr, ", ", acc.addr + acc.size,
              ") beyond capacity ", _mosCapacity);
    if (acc.addr / cfg.pageBytes != (acc.addr + acc.size - 1) /
        cfg.pageBytes)
        fatal("MoS access crosses a page boundary; split it upstream");

    ++_stats.accesses;
    std::uint64_t idx = tags.indexOf(acc.addr);
    MosTagEntry& e = tags.entry(idx);

    if (e.busy) {
        // The frame is under DMA: park the request in the wait queue
        // (paper Fig. 14). Requests that would have re-evicted the same
        // page are exactly the redundant evictions HAMS suppresses.
        ++_stats.waitQueued;
        if (e.valid && e.dirty)
            ++_stats.redundantEvictionsAvoided;
        waitQueue[idx].push_back(Waiter{acc, wdata, rdata, std::move(cb)});
        return;
    }

    if (e.valid && e.tag == tags.tagOf(acc.addr))
        handleHit(acc, wdata, rdata, at, std::move(cb));
    else
        handleMiss(acc, wdata, rdata, at, std::move(cb));
}

void
HamsController::serveFromFrame(const MemAccess& acc,
                               const std::uint8_t* wdata,
                               std::uint8_t* rdata, std::uint64_t idx,
                               Tick at, LatencyBreakdown bd, AccessCb cb)
{
    Addr line = frameAddr(idx) + acc.addr % cfg.pageBytes;
    Tick done = nvdimm.access(line, acc.size, acc.op, at);
    bd.nvdimm += done - at;
    _stats.memoryDelay += bd;

    if (acc.op == MemOp::Write) {
        tags.entry(idx).dirty = true;
        if (wdata && nvdimm.data())
            nvdimm.data()->write(line, wdata, acc.size);
    }

    std::uint32_t size = acc.size;
    eq.scheduleAt(done, [this, line, size, rdata, done, bd,
                         cb = std::move(cb)]() {
        if (rdata && nvdimm.data())
            nvdimm.data()->read(line, rdata, size);
        if (cb)
            cb(done, bd);
    });
}

void
HamsController::handleHit(const MemAccess& acc, const std::uint8_t* wdata,
                          std::uint8_t* rdata, Tick at, AccessCb cb)
{
    ++_stats.hits;
    // The tag is read out with the line itself, so the hit path is the
    // logic latency plus the single NVDIMM access.
    LatencyBreakdown bd;
    serveFromFrame(acc, wdata, rdata, tags.indexOf(acc.addr),
                   at + cfg.logicLatency, bd, std::move(cb));
}

void
HamsController::gateSubmit(Tick at, std::function<void(Tick)> thunk)
{
    if (cfg.mode != HamsMode::Persist) {
        thunk(at);
        return;
    }
    if (gateBusy) {
        ++_stats.persistGateWaits;
        gateQueue.push_back(std::move(thunk));
        return;
    }
    gateBusy = true;
    thunk(at);
}

void
HamsController::gateRelease(Tick at)
{
    if (cfg.mode != HamsMode::Persist)
        return;
    if (gateQueue.empty()) {
        gateBusy = false;
        return;
    }
    auto next = std::move(gateQueue.front());
    gateQueue.pop_front();
    next(at);
}

void
HamsController::handleMiss(const MemAccess& acc, const std::uint8_t* wdata,
                           std::uint8_t* rdata, Tick at, AccessCb cb)
{
    ++_stats.misses;
    std::uint64_t idx = tags.indexOf(acc.addr);
    tags.entry(idx).busy = true;

    LatencyBreakdown bd;
    Tick t0 = at + cfg.logicLatency;
    startMissIo(acc, wdata, rdata, t0, bd, std::move(cb));
}

void
HamsController::startMissIo(const MemAccess& acc, const std::uint8_t* wdata,
                            std::uint8_t* rdata, Tick at,
                            LatencyBreakdown bd, AccessCb cb)
{
    std::uint64_t idx = tags.indexOf(acc.addr);
    MosTagEntry& e = tags.entry(idx);
    bool need_evict = e.valid && e.dirty;
    bool fua = cfg.mode == HamsMode::Persist;
    Addr frame = frameAddr(idx);
    Addr mos_page = acc.addr - acc.addr % cfg.pageBytes;
    std::uint64_t new_tag = tags.tagOf(acc.addr);

    if (e.valid && !e.dirty)
        ++_stats.cleanVictims;

    // Clone the dirty victim into the PRP pool up front so the clone
    // cost is on this miss's critical path and the later DMA pull can
    // never observe the frame mid-update (paper SSV-B).
    Tick evict_ready = at;
    Addr evict_prp = frame;
    if (need_evict && cfg.hazard == HazardPolicy::PrpClone) {
        Addr clone = pinned.allocPrpFrame();
        Tick r = nvdimm.access(frame, cfg.pageBytes, MemOp::Read, at);
        Tick w = nvdimm.access(clone, cfg.pageBytes, MemOp::Write, r);
        if (nvdimm.data()) {
            std::vector<std::uint8_t> buf(cfg.pageBytes);
            nvdimm.data()->read(frame, buf.data(), cfg.pageBytes);
            nvdimm.data()->write(clone, buf.data(), cfg.pageBytes);
        }
        bd.nvdimm += w - at;
        evict_ready = w;
        evict_prp = clone;
        ++_stats.prpClones;
    }

    // Shared completion state for the (up to two) I/Os of this miss.
    Tick req_at = at;
    auto fill_done_cb = [this, acc, wdata, rdata, idx, new_tag, req_at,
                         cb = std::move(cb), bd](
                            const NvmeCommand&, const NvmeCmdTrace& trace,
                            Tick when) mutable {
        MosTagEntry& entry = tags.entry(idx);
        entry.tag = new_tag;
        entry.valid = true;
        entry.dirty = false;
        entry.busy = false;
        ++_stats.fills;

        LatencyBreakdown miss_bd = bd;
        miss_bd.ssd += trace.media;
        miss_bd.dma += trace.dma + trace.protocol;
        // Whatever the fill trace does not explain — chiefly waiting
        // for a serialised eviction in persist mode — is time the
        // device held the request.
        Tick counted = miss_bd.total();
        if (when > req_at && when - req_at > counted)
            miss_bd.ssd += (when - req_at) - counted;
        gateRelease(when);
        serveFromFrame(acc, wdata, rdata, idx, when, miss_bd,
                       std::move(cb));
        drainWaiters(idx, when);
    };

    auto submit_fill = [this, frame, mos_page, fill_done_cb](Tick t) {
        NvmeCommand fill = makeReadCommand(
            0, slbaOf(mos_page), blocksPerPage(), frame);
        engine.submit(fill, t, fill_done_cb);
    };

    if (!need_evict) {
        gateSubmit(at, [submit_fill](Tick t) { submit_fill(t); });
        return;
    }

    // --- Dirty victim: evict it first. ---
    ++_stats.dirtyEvictions;
    Addr victim_page = tags.mosPageAddr(e.tag, idx);
    std::uint64_t victim_slba = slbaOf(victim_page);

    switch (cfg.hazard) {
      case HazardPolicy::PrpClone:
      case HazardPolicy::Unprotected: {
        // Eviction and fill go out together; the device may complete
        // them out of order. With a clone that is safe; unprotected it
        // reproduces the paper's Fig. 13 corruption.
        if (cfg.mode == HamsMode::Persist) {
            // Persist mode still serialises: evict, then fill.
            gateSubmit(evict_ready, [this, evict_prp, victim_slba, fua,
                                     submit_fill](Tick t) {
                NvmeCommand ev = makeWriteCommand(
                    0, victim_slba, blocksPerPage(), evict_prp, fua);
                engine.submit(ev, t,
                              [this, submit_fill](const NvmeCommand&,
                                                  const NvmeCmdTrace&,
                                                  Tick when) {
                                  gateRelease(when);
                                  gateSubmit(when, [submit_fill](Tick t2) {
                                      submit_fill(t2);
                                  });
                              });
            });
        } else if (cfg.hazard == HazardPolicy::PrpClone) {
            NvmeCommand ev = makeWriteCommand(0, victim_slba,
                                              blocksPerPage(), evict_prp,
                                              fua);
            engine.submit(ev, evict_ready, nullptr);
            submit_fill(evict_ready);
        } else {
            // Unprotected: no clone and no ordering guarantee. A
            // latency-minded controller issues the demand fill first
            // and evicts lazily — so the eviction's DMA pulls the frame
            // *after* the fill (and subsequent MMU writes) replaced its
            // contents: the paper's Fig. 13 corruption.
            submit_fill(evict_ready);
            NvmeCommand ev = makeWriteCommand(0, victim_slba,
                                              blocksPerPage(), evict_prp,
                                              fua);
            engine.submit(ev, evict_ready, nullptr);
        }
        break;
      }
      case HazardPolicy::SerializeEvictFill: {
        // Safe without a clone: the fill only starts once the eviction
        // pulled the frame. Costs the full eviction latency on the
        // critical path.
        gateSubmit(evict_ready, [this, evict_prp, victim_slba, fua,
                                 submit_fill](Tick t) {
            NvmeCommand ev = makeWriteCommand(
                0, victim_slba, blocksPerPage(), evict_prp, fua);
            engine.submit(ev, t,
                          [this, submit_fill](const NvmeCommand&,
                                              const NvmeCmdTrace&,
                                              Tick when) {
                              gateRelease(when);
                              gateSubmit(when, [submit_fill](Tick t2) {
                                  submit_fill(t2);
                              });
                          });
        });
        break;
      }
    }
}

void
HamsController::drainWaiters(std::uint64_t idx, Tick at)
{
    auto it = waitQueue.find(idx);
    if (it == waitQueue.end() || it->second.empty())
        return;
    std::deque<Waiter> waiters = std::move(it->second);
    waitQueue.erase(it);
    for (auto& w : waiters) {
        // Re-inject; most will now hit (the fill just landed).
        access(w.acc, w.wdata, w.rdata, at, std::move(w.cb));
    }
}

void
HamsController::onPowerFail()
{
    // Wait queue and persist gate are volatile controller state. The
    // tag array itself lives in NVDIMM lines and therefore persists
    // (with stale busy bits recovery must clear).
    waitQueue.clear();
    gateQueue.clear();
    gateBusy = false;
}

void
HamsController::recover(Tick at, std::function<void(Tick)> done)
{
    engine.replayPending(
        at,
        [this](const NvmeCommand& cmd, const NvmeCmdTrace&, Tick) {
            ++_stats.replayedCommands;
            if (cmd.op() == NvmeOpcode::Read) {
                // A replayed fill: rebuild the tag entry it targeted.
                std::uint64_t idx = cmd.prp1 / cfg.pageBytes;
                Addr mos_page =
                    Addr(cmd.slba) * nvmeBlockSize;
                MosTagEntry& e = tags.entry(idx);
                e.tag = tags.tagOf(mos_page);
                e.valid = true;
                e.dirty = false;
                e.busy = false;
            }
        },
        [this, done = std::move(done)](Tick when) {
            tags.clearBusyBits();
            if (done)
                done(when);
        });
}

} // namespace hams

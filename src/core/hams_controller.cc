#include "core/hams_controller.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hams {

HamsController::HamsController(EventQueue& eq, Nvdimm& nvdimm,
                               HamsNvmeEngine& engine, PinnedRegion& pinned,
                               std::uint64_t mos_capacity,
                               const HamsControllerConfig& cfg)
    : eq(eq), nvdimm(nvdimm), engine(engine), pinned(pinned), cfg(cfg),
      _mosCapacity(mos_capacity),
      tags(pinned.cacheBytes() - pinned.cacheBytes() % cfg.pageBytes,
           cfg.pageBytes),
      staging(cfg.pageBytes)
{
    if (cfg.pageBytes % nvmeBlockSize != 0)
        fatal("MoS page size must be a multiple of the 4 KiB NVMe block");
    if (mos_capacity % cfg.pageBytes != 0)
        fatal("MoS capacity must be a multiple of the MoS page size");
    if (pinned.config().prpFrameBytes < cfg.pageBytes)
        fatal("PRP pool frames (", pinned.config().prpFrameBytes,
              ") smaller than the MoS page (", cfg.pageBytes, ")");

    waitHead.assign(tags.sets(), nil);
    waitTail.assign(tags.sets(), nil);
    waitDepth.assign(tags.sets(), 0);
}

HamsController::Op*
HamsController::makeOp(const MemAccess& acc, const std::uint8_t* wdata,
                       std::uint8_t* rdata, std::uint64_t idx, AccessCb cb)
{
    // Pooled objects keep their previous contents: reset every field.
    Op* op = opPool.acquire();
    op->acc = acc;
    op->wdata = wdata;
    op->rdata = rdata;
    op->idx = idx;
    op->newTag = 0;
    op->reqAt = 0;
    op->line = 0;
    op->done = 0;
    op->bd = LatencyBreakdown{};
    op->cb = std::move(cb);
    return op;
}

void
HamsController::access(const MemAccess& acc, const std::uint8_t* wdata,
                       std::uint8_t* rdata, Tick at, AccessCb cb)
{
    if (acc.addr + acc.size > _mosCapacity)
        fatal("MoS access [", acc.addr, ", ", acc.addr + acc.size,
              ") beyond capacity ", _mosCapacity);
    if (acc.addr / cfg.pageBytes != (acc.addr + acc.size - 1) /
        cfg.pageBytes)
        fatal("MoS access crosses a page boundary; split it upstream");

    ++_stats.accesses;
    if (hotness)
        hotness->touch(acc.addr);
    std::uint64_t idx = tags.indexOf(acc.addr);
    MosTagEntry& e = tags.entry(idx);

    if (e.busy) {
        // The frame is under DMA: park the request in the wait queue
        // (paper Fig. 14). Requests that would have re-evicted the same
        // page are exactly the redundant evictions HAMS suppresses.
        ++_stats.waitQueued;
        if (e.valid && e.dirty)
            ++_stats.redundantEvictionsAvoided;
        parkWaiter(acc, wdata, rdata, idx, std::move(cb));
        return;
    }

    if (_recovering) {
        // Degraded-service admission: the frame must be restored before
        // anything touches it (serving it earlier would return the
        // pre-backup garbage still in the DRAM). Stalled requests ride
        // the same pooled per-frame wait lists as busy-frame waiters;
        // the priority restore wakes them through onFramesRestored().
        ++_stats.degradedAccesses;
        if (!nvdimm.spanRestored(frameAddr(idx), cfg.pageBytes)) {
            ++_stats.restoreStalls;
            nvdimm.requestRestoreSpan(frameAddr(idx), cfg.pageBytes, at);
            parkWaiter(acc, wdata, rdata, idx, std::move(cb));
            return;
        }
    }

    Op* op = makeOp(acc, wdata, rdata, idx, std::move(cb));
    if (e.valid && e.tag == tags.tagOf(acc.addr))
        handleHit(op, at);
    else
        handleMiss(op, at);
}

bool
HamsController::tryAccess(const MemAccess& acc, Tick at,
                          InlineCompletion& out)
{
    // Persist mode serialises I/O through the gate; keep its accesses
    // on the one battle-tested path. Mid-recovery accesses need the
    // degraded-mode admission checks (and with restore events pending
    // the caller's queue-empty gate declines the inline path anyway).
    if (cfg.mode != HamsMode::Extend || _recovering)
        return false;
    if (acc.addr + acc.size > _mosCapacity)
        fatal("MoS access [", acc.addr, ", ", acc.addr + acc.size,
              ") beyond capacity ", _mosCapacity);
    if (acc.addr / cfg.pageBytes != (acc.addr + acc.size - 1) /
        cfg.pageBytes)
        fatal("MoS access crosses a page boundary; split it upstream");

    std::uint64_t idx = tags.indexOf(acc.addr);
    MosTagEntry& e = tags.entry(idx);
    if (e.busy || !e.valid || e.tag != tags.tagOf(acc.addr))
        return false;

    // A hit on an idle frame: the same arithmetic as handleHit +
    // serveFromFrame, minus the Op context and the completion event.
    ++_stats.accesses;
    if (hotness)
        hotness->touch(acc.addr);
    ++_stats.hits;
    Tick t = at + cfg.logicLatency;
    Addr line = frameAddr(idx) + acc.addr % cfg.pageBytes;
    Tick done = nvdimm.access(line, acc.size, acc.op, t);
    out.bd = LatencyBreakdown{};
    out.bd.nvdimm = done - t;
    _stats.memoryDelay += out.bd;
    if (acc.op == MemOp::Write)
        e.dirty = true;
    out.done = done;
    return true;
}

void
HamsController::serveFromFrame(Op* op, Tick at)
{
    op->line = frameAddr(op->idx) + op->acc.addr % cfg.pageBytes;
    Tick done = nvdimm.access(op->line, op->acc.size, op->acc.op, at);
    op->bd.nvdimm += done - at;
    _stats.memoryDelay += op->bd;

    if (op->acc.op == MemOp::Write) {
        tags.entry(op->idx).dirty = true;
        if (op->wdata && nvdimm.data())
            nvdimm.data()->write(op->line, op->wdata, op->acc.size);
    }

    op->done = done;
    eq.scheduleAt(done, [this, op]() {
        if (op->rdata && nvdimm.data())
            nvdimm.data()->read(op->line, op->rdata, op->acc.size);
        AccessCb cb = std::move(op->cb);
        Tick when = op->done;
        LatencyBreakdown bd = op->bd;
        // Release before the callback: it may re-enter access() and
        // reuse this very context.
        opPool.release(op);
        if (cb)
            cb(when, bd);
    });
}

void
HamsController::handleHit(Op* op, Tick at)
{
    ++_stats.hits;
    // The tag is read out with the line itself, so the hit path is the
    // logic latency plus the single NVDIMM access.
    serveFromFrame(op, at + cfg.logicLatency);
}

void
HamsController::gateSubmit(Tick at, GateThunk thunk)
{
    if (cfg.mode != HamsMode::Persist) {
        thunk(at);
        return;
    }
    if (gateBusy) {
        ++_stats.persistGateWaits;
        HAMS_LINT_SUPPRESS("gate-queue growth to the high-water mark of "
                           "concurrently gated persists; steady state "
                           "pops as it pushes")
        gateQueue.push_back(std::move(thunk));
        _stats.gateQueuePeakDepth =
            std::max<std::uint64_t>(_stats.gateQueuePeakDepth,
                                    gateQueue.size());
        return;
    }
    gateBusy = true;
    thunk(at);
}

void
HamsController::gateRelease(Tick at)
{
    if (cfg.mode != HamsMode::Persist)
        return;
    if (gateQueue.empty()) {
        gateBusy = false;
        return;
    }
    GateThunk next = std::move(gateQueue.front());
    gateQueue.pop_front();
    next(at);
}

void
HamsController::handleMiss(Op* op, Tick at)
{
    if (replayHolding()) {
        // Journal replay owns the SQ (its re-pushes must land on the
        // compacted slots in order); hold the miss — without setting
        // the busy bit — and re-decide once the replay drains: the
        // replay may well have filled this very frame.
        ++_stats.recoveryGateWaits;
        HAMS_LINT_SUPPRESS("recovery-window parking only: misses queue "
                           "here solely while journal replay owns the SQ")
        recoveryGate.push_back([this, op](Tick t) { retryMiss(op, t); });
        return;
    }
    ++_stats.misses;
    tags.entry(op->idx).busy = true;
    op->newTag = tags.tagOf(op->acc.addr);
    startMissIo(op, at + cfg.logicLatency);
}

void
HamsController::retryMiss(Op* op, Tick at)
{
    MosTagEntry& e = tags.entry(op->idx);
    if (e.busy) {
        // A replayed fill (or another retried miss) put the frame under
        // DMA: fall back to the ordinary wait list.
        ++_stats.waitQueued;
        if (e.valid && e.dirty)
            ++_stats.redundantEvictionsAvoided;
        parkWaiter(op->acc, op->wdata, op->rdata, op->idx,
                   std::move(op->cb));
        opPool.release(op);
        return;
    }
    if (e.valid && e.tag == tags.tagOf(op->acc.addr)) {
        handleHit(op, at);
        return;
    }
    handleMiss(op, at);
}

void
HamsController::startMissIo(Op* op, Tick at)
{
    MosTagEntry& e = tags.entry(op->idx);
    bool need_evict = e.valid && e.dirty;
    bool fua = cfg.mode == HamsMode::Persist;
    Addr frame = frameAddr(op->idx);
    op->reqAt = at;

    if (e.valid && !e.dirty)
        ++_stats.cleanVictims;

    // Clone the dirty victim into the PRP pool up front so the clone
    // cost is on this miss's critical path and the later DMA pull can
    // never observe the frame mid-update (paper SSV-B).
    Tick evict_ready = at;
    Addr evict_prp = frame;
    if (need_evict && cfg.hazard == HazardPolicy::PrpClone) {
        Addr clone = pinned.allocPrpFrame();
        if (_recovering && !nvdimm.spanRestored(clone, cfg.pageBytes)) {
            // The clone target itself is still streaming back. Queue
            // its priority restore and retry once it lands — the frame
            // goes back to the pool meanwhile so an invariant holds:
            // every allocated PRP frame is referenced by a journalled
            // command (that is what reclaims them across a cut).
            ++_stats.restoreStalls;
            Tick ready =
                nvdimm.requestRestoreSpan(clone, cfg.pageBytes, at);
            pinned.freePrpFrame(clone);
            eq.scheduleAt(ready,
                          [this, op]() { startMissIo(op, eq.now()); });
            return;
        }
        Tick r = nvdimm.access(frame, cfg.pageBytes, MemOp::Read, at);
        Tick w = nvdimm.access(clone, cfg.pageBytes, MemOp::Write, r);
        if (nvdimm.data() && cfg.functionalData) {
            std::uint8_t* buf = staging.acquire();
            nvdimm.data()->read(frame, buf, cfg.pageBytes);
            nvdimm.data()->write(clone, buf, cfg.pageBytes);
            staging.release(buf);
        }
        op->bd.nvdimm += w - at;
        evict_ready = w;
        evict_prp = clone;
        ++_stats.prpClones;
    }

    if (!need_evict) {
        gateSubmit(at, [this, op](Tick t) { submitFill(op, t); });
        return;
    }

    // --- Dirty victim: evict it first. ---
    ++_stats.dirtyEvictions;
    Addr victim_page = tags.mosPageAddr(e.tag, op->idx);
    std::uint64_t victim_slba = slbaOf(victim_page);

    switch (cfg.hazard) {
      case HazardPolicy::PrpClone:
      case HazardPolicy::Unprotected: {
        // Eviction and fill go out together; the device may complete
        // them out of order. With a clone that is safe; unprotected it
        // reproduces the paper's Fig. 13 corruption.
        if (cfg.mode == HamsMode::Persist) {
            // Persist mode still serialises: evict, then fill.
            gateSubmit(evict_ready,
                       [this, op, evict_prp, victim_slba](Tick t) {
                NvmeCommand ev = makeWriteCommand(
                    0, victim_slba, blocksPerPage(), evict_prp, true);
                engine.submit(ev, t,
                              [this, op](const NvmeCommand&,
                                         const NvmeCmdTrace&, Tick when) {
                                  gateRelease(when);
                                  gateSubmit(when, [this, op](Tick t2) {
                                      submitFill(op, t2);
                                  });
                              });
            });
        } else if (cfg.hazard == HazardPolicy::PrpClone) {
            NvmeCommand ev = makeWriteCommand(0, victim_slba,
                                              blocksPerPage(), evict_prp,
                                              fua);
            engine.submit(ev, evict_ready, nullptr);
            submitFill(op, evict_ready);
        } else {
            // Unprotected: no clone and no ordering guarantee. A
            // latency-minded controller issues the demand fill first
            // and evicts lazily — so the eviction's DMA pulls the frame
            // *after* the fill (and subsequent MMU writes) replaced its
            // contents: the paper's Fig. 13 corruption.
            submitFill(op, evict_ready);
            NvmeCommand ev = makeWriteCommand(0, victim_slba,
                                              blocksPerPage(), evict_prp,
                                              fua);
            engine.submit(ev, evict_ready, nullptr);
        }
        break;
      }
      case HazardPolicy::SerializeEvictFill: {
        // Safe without a clone: the fill only starts once the eviction
        // pulled the frame. Costs the full eviction latency on the
        // critical path.
        bool ser_fua = fua;
        gateSubmit(evict_ready,
                   [this, op, evict_prp, victim_slba, ser_fua](Tick t) {
            NvmeCommand ev = makeWriteCommand(
                0, victim_slba, blocksPerPage(), evict_prp, ser_fua);
            engine.submit(ev, t,
                          [this, op](const NvmeCommand&,
                                     const NvmeCmdTrace&, Tick when) {
                              gateRelease(when);
                              gateSubmit(when, [this, op](Tick t2) {
                                  submitFill(op, t2);
                              });
                          });
        });
        break;
      }
    }
}

void
HamsController::submitFill(Op* op, Tick t)
{
    Addr mos_page = op->acc.addr - op->acc.addr % cfg.pageBytes;
    NvmeCommand fill = makeReadCommand(0, slbaOf(mos_page), blocksPerPage(),
                                       frameAddr(op->idx));
    engine.submit(fill, t,
                  [this, op](const NvmeCommand&, const NvmeCmdTrace& trace,
                             Tick when) { onFillDone(op, trace, when); });
}

void
HamsController::onFillDone(Op* op, const NvmeCmdTrace& trace, Tick when)
{
    // One batched tag/stat update per fill.
    MosTagEntry& entry = tags.entry(op->idx);
    entry.tag = op->newTag;
    entry.valid = true;
    entry.dirty = false;
    entry.busy = false;
    ++_stats.fills;

    op->bd.ssd += trace.media;
    op->bd.dma += trace.dma + trace.protocol;
    // Whatever the fill trace does not explain — chiefly waiting for a
    // serialised eviction in persist mode — is time the device held the
    // request.
    Tick counted = op->bd.total();
    if (when > op->reqAt && when - op->reqAt > counted)
        op->bd.ssd += (when - op->reqAt) - counted;
    gateRelease(when);

    std::uint64_t idx = op->idx;
    serveFromFrame(op, when);
    drainWaiters(idx, when);
}

void
HamsController::parkWaiter(const MemAccess& acc, const std::uint8_t* wdata,
                           std::uint8_t* rdata, std::uint64_t idx,
                           AccessCb cb)
{
    std::uint32_t node;
    if (waiterFreeHead != nil) {
        node = waiterFreeHead;
        waiterFreeHead = waiterPool[node].next;
    } else {
        node = static_cast<std::uint32_t>(waiterPool.size());
        HAMS_LINT_SUPPRESS("waiter-pool growth to the high-water mark of "
                           "concurrent same-frame waiters; steady state "
                           "recycles off the free list")
        waiterPool.emplace_back();
    }
    Waiter& w = waiterPool[node];
    w.acc = acc;
    w.wdata = wdata;
    w.rdata = rdata;
    w.cb = std::move(cb);
    w.next = nil;

    if (waitHead[idx] == nil)
        waitHead[idx] = node;
    else
        waiterPool[waitTail[idx]].next = node;
    waitTail[idx] = node;
    ++waitDepth[idx];
    _stats.waiterPeakDepth =
        std::max<std::uint64_t>(_stats.waiterPeakDepth, waitDepth[idx]);
}

void
HamsController::drainWaiters(std::uint64_t idx, Tick at)
{
    // Detach the whole list first: re-injected requests may park again
    // on the same frame (a fresh miss sets the busy bit anew).
    std::uint32_t node = waitHead[idx];
    if (node == nil)
        return;
    waitHead[idx] = nil;
    waitTail[idx] = nil;
    waitDepth[idx] = 0;

    while (node != nil) {
        Waiter& w = waiterPool[node];
        MemAccess acc = w.acc;
        const std::uint8_t* wdata = w.wdata;
        std::uint8_t* rdata = w.rdata;
        AccessCb cb = std::move(w.cb);
        std::uint32_t next = w.next;
        // Recycle before re-injecting: access() may grow the arena and
        // invalidate the reference (never the freed slot itself).
        w.next = waiterFreeHead;
        waiterFreeHead = node;
        node = next;
        // Re-inject; most will now hit (the fill just landed).
        access(acc, wdata, rdata, at, std::move(cb));
    }
}

void
HamsController::onPowerFail()
{
    // Wait queue and persist gate are volatile controller state. The
    // tag array itself lives in NVDIMM lines and therefore persists
    // (with stale busy bits recovery must clear).
    std::fill(waitHead.begin(), waitHead.end(), nil);
    std::fill(waitTail.begin(), waitTail.end(), nil);
    std::fill(waitDepth.begin(), waitDepth.end(), 0);
    waiterPool.clear();
    waiterFreeHead = nil;
    gateQueue.clear();
    gateBusy = false;
    // A failure during recovery abandons the recovery in flight: its
    // scheduled events died with the queue reset, and the journal —
    // compacted, with the not-yet-replayed suffix still tagged — is
    // what the next beginRecovery() scans.
    recoveryGate.clear();
    rec.entries.clear();
    rec.issued = 0;
    rec.completed = 0;
    rec.total = 0;
    rec.scanned = false;
    rec.done = nullptr;
    _recovering = false;
    restoreDone = false;
    // The event queue and the NVMe engine have already dropped every
    // reference to in-flight Op contexts, so the pool can take them
    // all back (callers reset fields on acquire).
    opPool.reclaimAll();
}

void
HamsController::beginRecovery(Tick at, std::function<void(Tick)> done)
{
    if (_recovering)
        fatal("beginRecovery while a recovery is already in flight");
    _recovering = true;
    restoreDone = false;
    rec.entries.clear();
    rec.issued = 0;
    rec.completed = 0;
    rec.total = 0;
    rec.scanned = false;
    rec.done = std::move(done);

    // Stale busy bits from the cut would wedge every access to their
    // frames; replay re-busies exactly the frames with a fill still
    // pending (startReplay), so clearing here is safe.
    tags.clearBusyBits();

    // The journal scan reads the SQ ring: jump the NVMe metadata span
    // to the head of the restore stream, then scan when it lands.
    Tick ready = nvdimm.requestRestoreSpan(pinned.metadataBase(),
                                           pinned.metadataBytes(), at);
    eq.scheduleAt(std::max(ready, at),
                  [this]() { startReplay(eq.now()); });
}

void
HamsController::startReplay(Tick at)
{
    rec.entries = engine.scanJournal();
    rec.total = rec.entries.size();
    rec.scanned = true;
    engine.prepareReplay(rec.entries);
    // Re-busy the frames whose fills are about to be replayed: a
    // degraded access must park on them instead of hitting the evicted
    // victim's stale tag mid-replay.
    for (const NvmeCommand& cmd : rec.entries)
        if (cmd.op() == NvmeOpcode::Read && cmd.prp1 < pinned.cacheBytes())
            tags.entry(cmd.prp1 / cfg.pageBytes).busy = true;
    if (rec.total == 0) {
        finishReplay(at);
        return;
    }
    scheduleNextReplayEntry(at);
}

void
HamsController::scheduleNextReplayEntry(Tick at)
{
    // Per-entry replay cost plus however long the entry's DMA target
    // (cache frame for a fill, PRP clone for an eviction) still needs
    // on the restore stream.
    const NvmeCommand& cmd = rec.entries[rec.issued];
    Tick t = at + cfg.replayEntryCost;
    Tick ready = nvdimm.requestRestoreSpan(cmd.prp1, cfg.pageBytes, t);
    eq.scheduleAt(std::max(t, ready),
                  [this]() { issueReplayEntry(eq.now()); });
}

void
HamsController::issueReplayEntry(Tick at)
{
    const NvmeCommand& cmd = rec.entries[rec.issued++];
    engine.submitReplay(cmd, at,
                        [this](const NvmeCommand& c, const NvmeCmdTrace&,
                               Tick when) { onReplayEntryDone(c, when); });
}

void
HamsController::onReplayEntryDone(const NvmeCommand& cmd, Tick when)
{
    ++_stats.replayedCommands;
    ++rec.completed;
    if (cmd.op() == NvmeOpcode::Read && cmd.prp1 < pinned.cacheBytes()) {
        // A replayed fill: rebuild the tag entry it targeted and wake
        // the degraded accesses parked on it.
        std::uint64_t idx = cmd.prp1 / cfg.pageBytes;
        Addr mos_page = Addr(cmd.slba) * nvmeBlockSize;
        MosTagEntry& e = tags.entry(idx);
        e.tag = tags.tagOf(mos_page);
        e.valid = true;
        e.dirty = false;
        e.busy = false;
        drainWaiters(idx, when);
    }
    if (rec.completed == rec.total)
        finishReplay(when);
    else
        scheduleNextReplayEntry(when);
}

void
HamsController::finishReplay(Tick at)
{
    // The SQ is the controller's again: release the held misses.
    while (!recoveryGate.empty()) {
        GateThunk thunk = std::move(recoveryGate.front());
        recoveryGate.pop_front();
        thunk(at);
    }
    maybeFinishRecovery(at);
}

void
HamsController::onFramesRestored(std::uint64_t first_frame,
                                 std::uint64_t frame_count, Tick at)
{
    // Map the restored NVDIMM span onto cache frames and wake stalled
    // accesses. Busy frames stay parked (their fill completion drains
    // them); partially-covered frames just re-park via access().
    std::uint64_t rfb = nvdimm.restoreFrameBytes();
    std::uint64_t i0 = first_frame * rfb / cfg.pageBytes;
    std::uint64_t i1 = std::min<std::uint64_t>(
        tags.sets(),
        ((first_frame + frame_count) * rfb + cfg.pageBytes - 1) /
            cfg.pageBytes);
    for (std::uint64_t idx = i0; idx < i1; ++idx)
        if (waitHead[idx] != nil && !tags.entry(idx).busy)
            drainWaiters(idx, at);
}

void
HamsController::onRestoreComplete(Tick at)
{
    restoreDone = true;
    maybeFinishRecovery(at);
}

void
HamsController::maybeFinishRecovery(Tick at)
{
    if (!_recovering || !restoreDone || !rec.scanned ||
        rec.completed != rec.total)
        return;
    _recovering = false;
    std::function<void(Tick)> done = std::move(rec.done);
    rec.done = nullptr;
    if (done)
        done(at);
}

} // namespace hams

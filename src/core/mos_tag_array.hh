/**
 * @file
 * The MoS (Memory-over-Storage) tag array.
 *
 * HAMS configures the NVDIMM as a direct-mapped inclusive cache of the
 * ULL-Flash and embeds each line's metadata (tag, valid, dirty, busy)
 * alongside the ECC bits of the NVDIMM cache line itself — like the
 * MCDRAM tag scheme of Intel Knights Landing (paper SSV-A). Two
 * consequences the model preserves:
 *
 *  1. A tag probe costs no extra DRAM access: the tag travels with the
 *     data burst.
 *  2. Tags are as persistent as the NVDIMM contents, so valid/dirty
 *     state (and stale busy bits) survive power failure. An SRAM tag
 *     array would lose everything, which is why the paper rejects it.
 *
 * This class is the metadata mirror the controller consults; its
 * persistence semantics follow the NVDIMM it logically lives in.
 */

#ifndef HAMS_CORE_MOS_TAG_ARRAY_HH_
#define HAMS_CORE_MOS_TAG_ARRAY_HH_

#include <cstdint>
#include <vector>

#include "sim/annotations.hh"
#include "sim/types.hh"

namespace hams {

/** Metadata of one NVDIMM cache line (one MoS page frame). */
struct MosTagEntry
{
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    bool busy = false; //!< a fill/evict DMA is in flight on this frame
};

/**
 * Direct-mapped tag array over the NVDIMM cache region.
 */
class MosTagArray
{
  public:
    /**
     * @param cache_bytes size of the NVDIMM region used as MoS cache
     * @param page_bytes  MoS page (cache line) size, e.g. 128 KiB
     */
    MosTagArray(std::uint64_t cache_bytes, std::uint32_t page_bytes);

    std::uint64_t sets() const { return entries.size(); }
    std::uint32_t pageBytes() const { return _pageBytes; }

    /** Set index of a MoS address. */
    HAMS_HOT_PATH std::uint64_t indexOf(Addr mos_addr) const
    {
        return (mos_addr / _pageBytes) % sets();
    }

    /** Tag of a MoS address. */
    HAMS_HOT_PATH std::uint64_t tagOf(Addr mos_addr) const
    {
        return (mos_addr / _pageBytes) / sets();
    }

    /** First MoS byte cached by set @p idx when holding tag @p tag. */
    HAMS_HOT_PATH Addr
    mosPageAddr(std::uint64_t tag, std::uint64_t idx) const
    {
        return (tag * sets() + idx) * _pageBytes;
    }

    /** True if @p mos_addr currently hits. */
    HAMS_HOT_PATH bool
    hit(Addr mos_addr) const
    {
        const MosTagEntry& e = entries[indexOf(mos_addr)];
        return e.valid && e.tag == tagOf(mos_addr);
    }

    HAMS_HOT_PATH MosTagEntry& entry(std::uint64_t idx) { return entries[idx]; }
    HAMS_HOT_PATH const MosTagEntry& entry(std::uint64_t idx) const
    {
        return entries[idx];
    }

    /** Count of valid (resident) frames. */
    HAMS_COLD_PATH std::uint64_t residentCount() const;

    /** Count of dirty frames. */
    HAMS_COLD_PATH std::uint64_t dirtyCount() const;

    /** Clear stale busy bits (power-up recovery step). */
    HAMS_COLD_PATH void clearBusyBits();

    /** Invalidate everything (cold start). */
    HAMS_COLD_PATH void invalidateAll();

  private:
    std::uint32_t _pageBytes;
    std::vector<MosTagEntry> entries;
};

} // namespace hams

#endif // HAMS_CORE_MOS_TAG_ARRAY_HH_

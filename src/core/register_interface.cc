#include "core/register_interface.hh"

#include "sim/logging.hh"

namespace hams {

RegisterInterface::RegisterInterface(Nvdimm& nvdimm) : nvdimm(nvdimm) {}

Tick
RegisterInterface::sendCommand(Tick at)
{
    const Ddr4Timing& t = nvdimm.controller().device().timing();
    // CS# deselect cycle + write-command cycle + 8-beat data burst.
    Tick duration = 2 * t.tCK + t.tBURST;
    Tick done = nvdimm.controller().device().occupyBus(at, duration);
    ++_stats.commandsSent;
    _stats.busTime += duration;
    return done;
}

Tick
RegisterInterface::acquireLock(Tick at)
{
    if (_locked)
        panic("lock register already set: two bus masters");
    const Ddr4Timing& t = nvdimm.controller().device().timing();
    // Setting the lock register is a single-beat register write.
    Tick done = nvdimm.controller().device().occupyBus(at, 2 * t.tCK);
    _locked = true;
    ++_stats.lockAcquisitions;
    _stats.busTime += 2 * t.tCK;
    return done;
}

void
RegisterInterface::releaseLock(Tick)
{
    if (!_locked)
        panic("releasing a lock register that is not set");
    _locked = false;
}

} // namespace hams

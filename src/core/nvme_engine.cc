#include "core/nvme_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hams {

HamsNvmeEngine::HamsNvmeEngine(EventQueue& eq, NvmeController& ctrl,
                               PinnedRegion& pinned,
                               RegisterInterface* reg_if)
    : eq(eq), ctrl(ctrl), pinned(pinned), regIf(reg_if)
{
    qid = ctrl.attachQueue(&pinned.queuePair());
    ctrl.onCompletion([this](std::uint16_t q, const NvmeCompletion& cqe,
                             const NvmeCommand& cmd,
                             const NvmeCmdTrace& trace, Tick at) {
        if (q != qid)
            return;
        handleCompletion(cqe, cmd, trace, at);
    });

    inFlight.resize(65536);
}

Tick
HamsNvmeEngine::notifyDevice(Tick at)
{
    // Advanced HAMS streams the command over the DDR4 register
    // interface; baseline HAMS rings a PCIe doorbell (cost charged
    // inside the controller's doorbell handling).
    if (regIf)
        return regIf->sendCommand(at);
    return at;
}

std::uint16_t
HamsNvmeEngine::submit(NvmeCommand cmd, Tick at, DoneCb done)
{
    QueuePair& qp = pinned.queuePair();
    if (qp.sqFull())
        panic("HAMS SQ overflow: enlarge queueEntries (",
              qp.entries(), ")");

    cmd.cid = nextCid++;
    if (nextCid == 0)
        nextCid = 1;
    cmd.journalTag = 1;
    ++_stats.journalSets;

    std::uint16_t slot = qp.push(cmd);
    Pending& p = inFlight[cmd.cid];
    if (p.live)
        panic("cid space exhausted: 64Ki commands outstanding");
    p.slot = slot;
    p.live = true;
    p.done = std::move(done);
    ++_outstanding;
    ++_stats.submitted;

    Tick notified = notifyDevice(at);
    ctrl.ringDoorbell(qid, notified);
    return cmd.cid;
}

void
HamsNvmeEngine::handleCompletion(const NvmeCompletion& cqe,
                                 const NvmeCommand& cmd,
                                 const NvmeCmdTrace& trace, Tick at)
{
    Pending& p = inFlight[cqe.cid];
    if (!p.live)
        return; // stale completion from before a power failure

    // Consume the CQE and clear the journal tag in the persistent SQ
    // slot: the command is now durable on the device side.
    pinned.queuePair().popCompletion();
    NvmeCommand journalled = pinned.queuePair().readSlot(p.slot);
    if (journalled.cid == cmd.cid) {
        journalled.journalTag = 0;
        pinned.queuePair().writeSlot(p.slot, journalled);
        ++_stats.journalClears;
    }

    if (pinned.isPrpFrame(cmd.prp1))
        pinned.freePrpFrame(cmd.prp1);

    DoneCb done = std::move(p.done);
    p.live = false;
    if (_outstanding > 0)
        --_outstanding;
    ++_stats.completed;
    if (done)
        done(cmd, trace, at);
}

std::vector<NvmeCommand>
HamsNvmeEngine::scanJournal() const
{
    std::vector<NvmeCommand> pending;
    const QueuePair& qp = pinned.queuePair();
    for (std::uint16_t i = 0; i < qp.entries(); ++i) {
        NvmeCommand cmd = qp.readSlot(i);
        if (cmd.journalTag == 1 && cmd.cid != 0)
            pending.push_back(cmd);
    }
    return pending;
}

void
HamsNvmeEngine::onPowerFail()
{
    for (Pending& p : inFlight) {
        p.live = false;
        p.done = nullptr;
    }
    _outstanding = 0;
}

void
HamsNvmeEngine::prepareReplay(const std::vector<NvmeCommand>& pending)
{
    QueuePair& qp = pinned.queuePair();
    if (pending.size() > qp.entries())
        panic("replay set (", pending.size(), ") exceeds SQ depth (",
              qp.entries(), ")");
    qp.resetPointers();
    // Compact the journal to a prefix: still-tagged entries move to
    // slots [0, n), every other slot's tag is cleared. Each is written
    // persistently before any replay event runs, so a second failure
    // at any later event boundary rescans exactly the entries whose
    // re-issue has not yet re-journalled them in place.
    std::uint16_t i = 0;
    for (const NvmeCommand& cmd : pending)
        qp.writeSlot(i++, cmd);
    for (; i < qp.entries(); ++i) {
        NvmeCommand slot = qp.readSlot(i);
        if (slot.journalTag == 1) {
            slot.journalTag = 0;
            qp.writeSlot(i, slot);
        }
    }
}

std::uint16_t
HamsNvmeEngine::submitReplay(const NvmeCommand& cmd, Tick at, DoneCb done)
{
    // Re-issue with a fresh cid; the push lands on this entry's own
    // compacted slot (see prepareReplay), superseding it.
    ++_stats.replayed;
    return submit(cmd, at, std::move(done));
}

} // namespace hams

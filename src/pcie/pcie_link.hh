/**
 * @file
 * Serial interconnect model covering PCIe (Gen3 x4 for NVMe devices) and
 * SATA 3.0 links.
 *
 * Transfers pay a propagation/encapsulation latency plus occupancy of the
 * per-direction bandwidth; payloads are packetised (TLPs for PCIe, FIS
 * for SATA) with a header-efficiency factor. This is the interface whose
 * limited bandwidth caps baseline HAMS on cache misses (paper SSIV-C).
 */

#ifndef HAMS_PCIE_PCIE_LINK_HH_
#define HAMS_PCIE_PCIE_LINK_HH_

#include <cstdint>

#include "sim/annotations.hh"
#include "sim/types.hh"

namespace hams {

/** Transfer direction over the link. */
enum class LinkDir : std::uint8_t { ToDevice, ToHost };

/** Link parameters. */
struct LinkConfig
{
    double bandwidth = 3.938e9;   //!< raw bytes/s per direction
    std::uint32_t maxPayload = 256; //!< packet payload bytes
    std::uint32_t headerBytes = 26; //!< per-packet framing overhead
    Tick propagation = nanoseconds(350); //!< end-to-end latency
    bool fullDuplex = true;

    /** PCIe 3.0 x4 (985 MB/s/lane raw). */
    static LinkConfig pcieGen3(std::uint32_t lanes);

    /** SATA 3.0 (600 MB/s, half duplex, longer latency). */
    static LinkConfig sata3();

    /** Effective data bandwidth after packet framing. */
    double
    effectiveBandwidth() const
    {
        return bandwidth * maxPayload / double(maxPayload + headerBytes);
    }
};

/**
 * A point-to-point link with per-direction busy tracking.
 */
class PcieLink
{
  public:
    explicit PcieLink(const LinkConfig& cfg);

    /**
     * Move @p bytes in direction @p dir starting no earlier than @p at.
     * @return tick at which the last byte lands.
     */
    HAMS_HOT_PATH Tick transfer(std::uint64_t bytes, LinkDir dir, Tick at);

    /** A register-sized write (doorbell, MSI): latency only. */
    HAMS_HOT_PATH Tick signal(Tick at) const { return at + cfg.propagation; }

    /** Total bytes moved (for utilisation stats). */
    std::uint64_t bytesMoved() const { return _bytesMoved; }

    const LinkConfig& config() const { return cfg; }

    /** Clear busy state (power cycle). */
    HAMS_COLD_PATH void reset();

  private:
    LinkConfig cfg;
    Tick busyUntil[2] = {0, 0};
    std::uint64_t _bytesMoved = 0;
};

} // namespace hams

#endif // HAMS_PCIE_PCIE_LINK_HH_

#include "pcie/pcie_link.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hams {

LinkConfig
LinkConfig::pcieGen3(std::uint32_t lanes)
{
    if (lanes == 0 || lanes > 16)
        fatal("PCIe lane count must be in [1,16], got ", lanes);
    LinkConfig c;
    c.bandwidth = 985e6 * lanes;
    c.maxPayload = 256;
    c.headerBytes = 26;
    c.propagation = nanoseconds(350);
    c.fullDuplex = true;
    return c;
}

LinkConfig
LinkConfig::sata3()
{
    LinkConfig c;
    c.bandwidth = 600e6;
    c.maxPayload = 8192; // FIS-level framing; efficiency folded below
    c.headerBytes = 512;
    c.propagation = microseconds(2);
    c.fullDuplex = false;
    return c;
}

PcieLink::PcieLink(const LinkConfig& cfg) : cfg(cfg) {}

Tick
PcieLink::transfer(std::uint64_t bytes, LinkDir dir, Tick at)
{
    // Half-duplex links share one resource for both directions.
    std::size_t lane = cfg.fullDuplex ? static_cast<std::size_t>(dir) : 0;
    Tick& busy = busyUntil[lane];

    Tick start = std::max(at, busy);
    double eff_bw = cfg.effectiveBandwidth();
    auto occupancy =
        static_cast<Tick>(static_cast<double>(bytes) / eff_bw * 1e12);
    Tick done = start + cfg.propagation + occupancy;
    // The wire frees once the last byte is serialised; propagation
    // overlaps with the next packet's serialisation.
    busy = start + occupancy;
    _bytesMoved += bytes;
    return done;
}

void
PcieLink::reset()
{
    busyUntil[0] = busyUntil[1] = 0;
    _bytesMoved = 0;
}

} // namespace hams
